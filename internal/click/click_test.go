package click

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"vini/internal/fib"
	"vini/internal/packet"
	"vini/internal/sim"
)

// sink collects packets pushed into it.
type sink struct {
	base
	got []*packet.Packet
}

func newSink(name string, args []string) (Element, error) {
	return &sink{base: base{name: name}}, nil
}
func (s *sink) Class() string                   { return "TestSink" }
func (s *sink) Push(port int, p *packet.Packet) { s.got = append(s.got, p) }

// capture implements TunnelTransport and TapSink for tests.
type capture struct {
	tunneled []fib.EncapEntry
	packets  []*packet.Packet
	tapped   []*packet.Packet
}

func (c *capture) SendTunnel(e fib.EncapEntry, p *packet.Packet) {
	c.tunneled = append(c.tunneled, e)
	c.packets = append(c.packets, p)
}
func (c *capture) DeliverTap(p *packet.Packet) { c.tapped = append(c.tapped, p) }

func init() { Register("TestSink", newSink) }

var (
	src10 = packet.MustAddr("10.1.1.2")
	dst10 = packet.MustAddr("10.1.2.3")
)

func testCtx() (*Context, *capture, *sim.Loop) {
	loop := sim.NewLoop(1)
	cap := &capture{}
	ctx := &Context{
		Clock:     loop,
		RNG:       loop.RNG(),
		FIB:       fib.New(),
		Encap:     fib.NewEncapTable(),
		Tunnels:   cap,
		Tap:       cap,
		LocalAddr: packet.Flow{Src: packet.MustAddr("10.1.1.1")},
	}
	return ctx, cap, loop
}

func mustParse(t *testing.T, ctx *Context, cfg string) *Router {
	t.Helper()
	r, err := ParseConfig(ctx, cfg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := r.Initialize(); err != nil {
		t.Fatalf("initialize: %v", err)
	}
	return r
}

func TestParseDeclarationAndChain(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		// IIAS-style graph
		in :: FromTunnel;
		cnt :: Counter;
		out :: TestSink;
		in -> cnt -> out;
	`)
	p := packet.New([]byte{1, 2, 3})
	r.Push("in", 0, p)
	s, _ := r.Element("out")
	if len(s.(*sink).got) != 1 {
		t.Fatal("packet did not traverse chain")
	}
	if v, err := r.Handler("cnt.count", ""); err != nil || v != "1" {
		t.Fatalf("counter = %q err=%v", v, err)
	}
	if v, err := r.Handler("cnt.byte_count", ""); err != nil || v != "3" {
		t.Fatalf("byte count = %q err=%v", v, err)
	}
}

func TestParseExplicitPorts(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		cl :: Classifier(0/01, -);
		a :: TestSink;
		b :: TestSink;
		cl[0] -> a;
		cl[1] -> [0]b;
	`)
	r.Push("cl", 0, packet.New([]byte{0x01, 0xff}))
	r.Push("cl", 0, packet.New([]byte{0x02, 0xff}))
	ea, _ := r.Element("a")
	eb, _ := r.Element("b")
	if len(ea.(*sink).got) != 1 || len(eb.(*sink).got) != 1 {
		t.Fatalf("classifier misrouted: a=%d b=%d",
			len(ea.(*sink).got), len(eb.(*sink).got))
	}
}

func TestParseMultiDeclarationAndComments(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		/* two counters
		   at once */
		c1, c2 :: Counter;
		c1 -> c2; // chained
	`)
	if len(r.Elements()) != 2 {
		t.Fatalf("elements = %v", r.Elements())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"x :: NoSuchClass;",
		"x :: Counter; x :: Counter;", // duplicate
		"x -> y;",                     // undeclared
		"x :: Counter( ;",             // unbalanced
		"x :: Counter; x[z] -> x;",    // bad port
		"frob grob;",                  // not a statement
		"x :: Tee(0);",                // bad arg
		"x :: Classifier();",          // missing pattern
		"x :: Classifier(zz/qq);",     // bad hex
		"c :: Classifier(0/00%ffff);", // mask length mismatch
	}
	for _, c := range cases {
		ctx, _, _ := testCtx()
		if _, err := ParseConfig(ctx, c); err == nil {
			t.Errorf("config %q parsed without error", c)
		}
	}
}

func TestSplitArgs(t *testing.T) {
	args, err := SplitArgs(`a, b(c, d), "e, f", g`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b(c, d)", `"e, f"`, "g"}
	if len(args) != len(want) {
		t.Fatalf("args = %q", args)
	}
	for i := range want {
		if args[i] != want[i] {
			t.Fatalf("args = %q, want %q", args, want)
		}
	}
}

func TestSplitArgsProperty(t *testing.T) {
	// Joining split args with "," and re-splitting is stable.
	f := func(parts []string) bool {
		var clean []string
		for _, p := range parts {
			p = strings.Map(func(r rune) rune {
				switch r {
				case ',', '(', ')', '"':
					return -1
				}
				return r
			}, p)
			p = strings.TrimSpace(p)
			if p != "" {
				clean = append(clean, p)
			}
		}
		joined := strings.Join(clean, ", ")
		got, err := SplitArgs(joined)
		if err != nil {
			return false
		}
		if len(got) != len(clean) {
			return false
		}
		for i := range clean {
			if got[i] != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifierIPProto(t *testing.T) {
	ctx, _, _ := testCtx()
	// Protocol field at offset 9: UDP=17 (0x11), ICMP=1, rest.
	r := mustParse(t, ctx, `
		cl :: Classifier(9/11, 9/01, -);
		udp :: TestSink; icmp :: TestSink; other :: TestSink;
		cl[0] -> udp; cl[1] -> icmp; cl[2] -> other;
	`)
	r.Push("cl", 0, packet.New(packet.BuildUDP(src10, dst10, 1, 2, 64, nil)))
	r.Push("cl", 0, packet.New(packet.BuildICMPEcho(src10, dst10, false, 1, 1, 64, nil)))
	r.Push("cl", 0, packet.New(packet.BuildTCP(src10, dst10, packet.TCP{}, 64, nil)))
	for name, want := range map[string]int{"udp": 1, "icmp": 1, "other": 1} {
		e, _ := r.Element(name)
		if got := len(e.(*sink).got); got != want {
			t.Errorf("%s got %d packets, want %d", name, got, want)
		}
	}
}

func TestClassifierMask(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		cl :: Classifier(0/40%f0, -);
		v4 :: TestSink; rest :: TestSink;
		cl[0] -> v4; cl[1] -> rest;
	`)
	r.Push("cl", 0, packet.New([]byte{0x45, 0x00}))
	r.Push("cl", 0, packet.New([]byte{0x60, 0x00}))
	e1, _ := r.Element("v4")
	e2, _ := r.Element("rest")
	if len(e1.(*sink).got) != 1 || len(e2.(*sink).got) != 1 {
		t.Fatal("masked classification wrong")
	}
}

func TestCheckIPHeader(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		chk :: CheckIPHeader;
		good :: TestSink; bad :: TestSink;
		chk[0] -> good; chk[1] -> bad;
	`)
	ok := packet.BuildUDP(src10, dst10, 1, 2, 64, nil)
	r.Push("chk", 0, packet.New(ok))
	corrupt := append([]byte(nil), ok...)
	corrupt[4] ^= 0xff
	r.Push("chk", 0, packet.New(corrupt))
	g, _ := r.Element("good")
	b, _ := r.Element("bad")
	if len(g.(*sink).got) != 1 || len(b.(*sink).got) != 1 {
		t.Fatal("header check misrouted")
	}
	if v, _ := r.Handler("chk.drops", ""); v != "1" {
		t.Fatalf("drops = %s", v)
	}
}

func TestDecIPTTLExpiry(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		dec :: DecIPTTL;
		fwd :: TestSink; exp :: TestSink;
		dec[0] -> fwd; dec[1] -> exp;
	`)
	r.Push("dec", 0, packet.New(packet.BuildUDP(src10, dst10, 1, 2, 64, nil)))
	r.Push("dec", 0, packet.New(packet.BuildUDP(src10, dst10, 1, 2, 1, nil)))
	f, _ := r.Element("fwd")
	e, _ := r.Element("exp")
	if len(f.(*sink).got) != 1 || len(e.(*sink).got) != 1 {
		t.Fatal("TTL handling misrouted")
	}
	var ip packet.IPv4
	if _, err := ip.Parse(f.(*sink).got[0].Data); err != nil {
		t.Fatalf("decremented packet has bad checksum: %v", err)
	}
	if ip.TTL != 63 {
		t.Fatalf("TTL = %d, want 63", ip.TTL)
	}
}

func TestLookupRouteAndEncap(t *testing.T) {
	ctx, cap, _ := testCtx()
	nh := packet.MustAddr("10.1.1.3")
	ctx.FIB.Add(fib.Route{Prefix: packet.MustPrefix("10.1.2.0/24"), NextHop: nh, OutPort: 0, Owner: "static"})
	ctx.FIB.Add(fib.Route{Prefix: packet.MustPrefix("10.1.1.1/32"), OutPort: 1, Owner: "connected"})
	ctx.Encap.Set(fib.EncapEntry{NextHop: nh, Remote: packet.MustAddr("198.32.154.250"), Port: 33000, Tunnel: 1})
	r := mustParse(t, ctx, `
		rt :: LookupIPRoute(NOROUTE 2);
		encap :: EncapTunnel;
		tap :: ToTap;
		unreach :: TestSink;
		rt[0] -> encap;
		rt[1] -> tap;
		rt[2] -> unreach;
	`)
	// Forwarded packet goes to the tunnel transport.
	r.Push("rt", 0, packet.New(packet.BuildUDP(src10, dst10, 1, 2, 64, nil)))
	if len(cap.tunneled) != 1 || cap.tunneled[0].Remote != packet.MustAddr("198.32.154.250") {
		t.Fatalf("tunneled = %+v", cap.tunneled)
	}
	// Local packet goes to tap.
	r.Push("rt", 0, packet.New(packet.BuildUDP(src10, packet.MustAddr("10.1.1.1"), 1, 2, 64, nil)))
	if len(cap.tapped) != 1 {
		t.Fatal("local packet not delivered to tap")
	}
	// Unroutable packet exits the NOROUTE port.
	r.Push("rt", 0, packet.New(packet.BuildUDP(src10, packet.MustAddr("203.0.113.9"), 1, 2, 64, nil)))
	u, _ := r.Element("unreach")
	if len(u.(*sink).got) != 1 {
		t.Fatal("unroutable packet lost")
	}
	if v, _ := r.Handler("rt.noroute", ""); v != "1" {
		t.Fatalf("noroute counter = %s", v)
	}
}

func TestLinkFailHandlerAndDrop(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		fail :: LinkFail;
		out :: TestSink;
		fail -> out;
	`)
	r.Push("fail", 0, packet.New([]byte{1}))
	if _, err := r.Handler("fail.active", "true"); err != nil {
		t.Fatal(err)
	}
	r.Push("fail", 0, packet.New([]byte{2}))
	r.Push("fail", 0, packet.New([]byte{3}))
	if _, err := r.Handler("fail.active", "false"); err != nil {
		t.Fatal(err)
	}
	r.Push("fail", 0, packet.New([]byte{4}))
	o, _ := r.Element("out")
	if len(o.(*sink).got) != 2 {
		t.Fatalf("passed = %d, want 2", len(o.(*sink).got))
	}
	if v, _ := r.Handler("fail.drops", ""); v != "2" {
		t.Fatalf("drops = %s", v)
	}
}

func TestLinkFailDropProb(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		fail :: LinkFail(DROP_PROB 0.5);
		out :: TestSink;
		fail -> out;
	`)
	for i := 0; i < 2000; i++ {
		r.Push("fail", 0, packet.New([]byte{1}))
	}
	o, _ := r.Element("out")
	got := len(o.(*sink).got)
	if got < 850 || got > 1150 {
		t.Fatalf("passed %d of 2000 at p=0.5", got)
	}
}

func TestQueueTailDrop(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `q :: Queue(3);`)
	e, _ := r.Element("q")
	q := e.(*queue)
	for i := 0; i < 5; i++ {
		r.Push("q", 0, packet.New([]byte{byte(i)}))
	}
	if q.Len() != 3 {
		t.Fatalf("queue length = %d, want 3", q.Len())
	}
	if v, _ := r.Handler("q.drops", ""); v != "2" {
		t.Fatalf("drops = %s", v)
	}
	if p := q.Pull(); p == nil || p.Data[0] != 0 {
		t.Fatalf("FIFO violated: %v", p)
	}
	q.Pull()
	q.Pull()
	if q.Pull() != nil {
		t.Fatal("empty queue returned a packet")
	}
}

func TestBandwidthShaper(t *testing.T) {
	ctx, _, loop := testCtx()
	// 8000 bits/s with 100-byte packets -> one packet per 100 ms.
	r := mustParse(t, ctx, `
		sh :: BandwidthShaper(8000, 10);
		out :: TestSink;
		sh -> out;
	`)
	var arrivals []time.Duration
	o, _ := r.Element("out")
	for i := 0; i < 3; i++ {
		r.Push("sh", 0, packet.New(make([]byte, 100)))
	}
	loop.RunAll()
	for range o.(*sink).got {
		arrivals = append(arrivals, 0)
	}
	if len(arrivals) != 3 {
		t.Fatalf("delivered = %d, want 3", len(arrivals))
	}
	// First packet leaves immediately; full drain takes 2 tx times.
	if loop.Now() != 300*time.Millisecond {
		t.Fatalf("drain finished at %v, want 300ms", loop.Now())
	}
}

func TestIPNAPTElement(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		napt :: IPNAPT(198.32.154.226);
		out :: TestSink; in :: TestSink;
		napt[0] -> out;
		napt[1] -> [0]in;
	`)
	ext := packet.MustAddr("64.236.16.20")
	r.Push("napt", 0, packet.New(packet.BuildUDP(src10, ext, 5555, 80, 62, []byte("GET"))))
	o, _ := r.Element("out")
	if len(o.(*sink).got) != 1 {
		t.Fatal("outbound not translated")
	}
	f, _ := packet.FlowOf(o.(*sink).got[0].Data)
	if f.Src != packet.MustAddr("198.32.154.226") {
		t.Fatalf("source = %v", f.Src)
	}
	// Return path.
	ret := packet.BuildUDP(ext, packet.MustAddr("198.32.154.226"), 80, f.SrcPort, 60, []byte("OK"))
	r.Push("napt", 1, packet.New(ret))
	i, _ := r.Element("in")
	if len(i.(*sink).got) != 1 {
		t.Fatal("inbound not translated")
	}
	bf, _ := packet.FlowOf(i.(*sink).got[0].Data)
	if bf.Dst != src10 || bf.DstPort != 5555 {
		t.Fatalf("restored = %v", bf)
	}
	// Unsolicited inbound is dropped.
	r.Push("napt", 1, packet.New(packet.BuildUDP(ext, packet.MustAddr("198.32.154.226"), 80, 9999, 60, nil)))
	if len(i.(*sink).got) != 1 {
		t.Fatal("unsolicited inbound passed")
	}
}

func TestICMPErrorElement(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		err :: ICMPError(11, 0);
		out :: TestSink;
		err -> out;
	`)
	r.Push("err", 0, packet.New(packet.BuildUDP(src10, dst10, 1, 2, 1, nil)))
	o, _ := r.Element("out")
	if len(o.(*sink).got) != 1 {
		t.Fatal("no ICMP error generated")
	}
	var ip packet.IPv4
	payload, err := ip.Parse(o.(*sink).got[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Dst != src10 || ip.Src != packet.MustAddr("10.1.1.1") {
		t.Fatalf("error addressed wrong: %v -> %v", ip.Src, ip.Dst)
	}
	var ic packet.ICMP
	if _, err := ic.Parse(payload); err != nil || ic.Type != packet.ICMPTimeExceeded {
		t.Fatalf("icmp = %+v err=%v", ic, err)
	}
}

func TestStripAndEtherEncap(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		enc :: EtherEncap(0x0800, 02:00:00:00:00:01, 02:00:00:00:00:02);
		str :: Strip(14);
		out :: TestSink;
		enc -> str -> out;
	`)
	r.Push("enc", 0, packet.New([]byte{0xde, 0xad}))
	o, _ := r.Element("out")
	if len(o.(*sink).got) != 1 || len(o.(*sink).got[0].Data) != 2 {
		t.Fatal("encap/strip not inverse")
	}
}

func TestTeeDuplicates(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		t :: Tee(3);
		a :: TestSink; b :: TestSink; c :: TestSink;
		t[0] -> a; t[1] -> b; t[2] -> c;
	`)
	p := packet.New([]byte{9})
	r.Push("t", 0, p)
	for _, n := range []string{"a", "b", "c"} {
		e, _ := r.Element(n)
		if len(e.(*sink).got) != 1 {
			t.Fatalf("tee output %s missing packet", n)
		}
	}
	// The copies must not alias.
	ea, _ := r.Element("a")
	eb, _ := r.Element("b")
	ea.(*sink).got[0].Data[0] = 1
	if eb.(*sink).got[0].Data[0] != 9 {
		t.Fatal("tee outputs alias one buffer")
	}
}

func TestPaintCheckPaint(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		p :: Paint(7);
		cp :: CheckPaint(7);
		hit :: TestSink; miss :: TestSink;
		p -> cp;
		cp[0] -> hit; cp[1] -> miss;
	`)
	r.Push("p", 0, packet.New([]byte{1}))
	r.Push("cp", 0, packet.New([]byte{2})) // unpainted
	h, _ := r.Element("hit")
	m, _ := r.Element("miss")
	if len(h.(*sink).got) != 1 || len(m.(*sink).got) != 1 {
		t.Fatal("paint routing wrong")
	}
}

func TestHandlersErrors(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `c :: Counter;`)
	if _, err := r.Handler("nosuch.count", ""); err == nil {
		t.Fatal("unknown element accepted")
	}
	if _, err := r.Handler("c.nosuch", ""); err == nil {
		t.Fatal("unknown handler accepted")
	}
	if _, err := r.Handler("plainname", ""); err == nil {
		t.Fatal("malformed path accepted")
	}
}

func TestInitializeFailsWithoutResources(t *testing.T) {
	r := NewRouter(&Context{})
	if err := r.AddElement("rt", "LookupIPRoute", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Initialize(); err == nil {
		t.Fatal("LookupIPRoute initialized without FIB")
	}
}

func TestSetTimestamp(t *testing.T) {
	ctx, _, loop := testCtx()
	r := mustParse(t, ctx, `
		ts :: SetTimestamp;
		out :: TestSink;
		ts -> out;
	`)
	loop.Schedule(5*time.Millisecond, func() {
		r.Push("ts", 0, packet.New([]byte{1}))
	})
	loop.RunAll()
	o, _ := r.Element("out")
	if got := o.(*sink).got[0].Anno.Timestamp; got != 5*time.Millisecond {
		t.Fatalf("timestamp = %v", got)
	}
}

func TestClassesListsRegistrations(t *testing.T) {
	cs := Classes()
	want := map[string]bool{"Classifier": true, "LookupIPRoute": true, "IPNAPT": true}
	found := 0
	for _, c := range cs {
		if want[c] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("registry missing classes: %v", cs)
	}
}

func TestRouterFlushReleasesBufferedPackets(t *testing.T) {
	ctx, _, _ := testCtx()
	base := packet.Stats()
	r := mustParse(t, ctx, `
		q :: Queue(10);
		sh :: BandwidthShaper(1000, 10);
		out :: TestSink;
		sh -> out;
	`)
	// Fill the queue (no puller attached) and the shaper's backlog: the
	// 1 kbit/s rate keeps all but the first packet buffered.
	for i := 0; i < 4; i++ {
		pq := packet.Get()
		pq.SetData([]byte{1, 2, 3, 4})
		r.Push("q", 0, pq)
		ps := packet.Get()
		ps.SetData([]byte{1, 2, 3, 4})
		r.Push("sh", 0, ps)
	}
	if n := r.Flush(); n != 4+3 {
		t.Fatalf("Flush released %d, want 7", n)
	}
	if n := r.Flush(); n != 0 {
		t.Fatalf("second Flush released %d, want 0", n)
	}
	// Only the packets handed to the sink remain outstanding.
	out, _ := r.Element("out")
	for _, p := range out.(*sink).got {
		p.Release()
	}
	if f := packet.Stats().Sub(base).InFlight(); f != 0 {
		t.Fatalf("pool ledger unbalanced after Flush: %d in flight", f)
	}
}
