package sim

import (
	"fmt"
	"time"
)

// EventKey is the deterministic merge key of one event: timestamp,
// origin domain id, origin sequence number. Keys are globally unique
// and totally ordered; they are what crosses process boundaries in
// votes and shipped messages, so a sharded run merges every event into
// exactly the slot a single shared heap would have used.
type EventKey struct {
	At  time.Duration
	Dom int32
	Seq uint64
}

// keyLess orders EventKeys by the merge order (at, dom, seq) — the same
// order less() applies to in-heap events.
func keyLess(a, b EventKey) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Dom != b.Dom {
		return a.Dom < b.Dom
	}
	return a.Seq < b.Seq
}

// Vote is one shard's contribution to an agreement point: the merge key
// of its earliest pending owned node event (At == maxTime when it has
// none), plus how much progress the previous epoch made locally. The
// coordinator needs the deltas from every shard to decide whether the
// whole system is stuck on a zero-lookahead cycle (fallback) or merely
// this shard's share of it went idle.
type Vote struct {
	Key      EventKey
	Delta    uint64 // events consumed by the last epoch on this shard
	EpochRan bool   // whether the previous loop iteration ran an epoch
}

// Decision is the agreed outcome every shard derives its next step
// from. All shards receive the identical Decision, and every branch the
// coordinator loop takes afterwards is a pure function of the Decision
// plus replicated control-domain state — which is what keeps the
// processes in lockstep without any further coordination.
type Decision struct {
	// NodeNext is the globally earliest pending node-event time across
	// all shards (maxTime when no node work remains).
	NodeNext time.Duration
	// Fallback is set when the previous epoch ran everywhere and made no
	// progress anywhere: the shard owning FallbackKey must run exactly
	// that one event sequentially.
	Fallback    bool
	FallbackKey EventKey
}

// DomainTransport is the seam between the executor's superstep loop and
// the mechanism that moves cross-domain traffic and agreement between
// shards. The in-process implementation is a no-op pass-through; the
// socket implementation ships typed message trains, votes, and
// decisions over length-prefixed frames.
//
// The executor calls Exchange then Agree exactly once per loop
// iteration, in that order, always from the coordinator goroutine (no
// workers are active at either call).
type DomainTransport interface {
	// Exchange moves cross-shard messages: it drains every replica
	// domain's inbox (messages this shard generated for domains owned
	// elsewhere), ships them to their owners, and injects the messages
	// other shards generated for domains owned here.
	Exchange(x *Executor) error
	// Agree combines this shard's vote with every other shard's and
	// returns the common Decision.
	Agree(x *Executor, v Vote) (Decision, error)
}

// TransportError is the typed failure surfaced by Executor.Run when a
// shard peer dies, times out, or desynchronizes mid-run. Op names the
// protocol step that failed; Shard is the peer (or the local shard for
// encode/collect failures).
type TransportError struct {
	Shard int
	Op    string
	Err   error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("sim: transport failure (shard %d, %s): %v", e.Shard, e.Op, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// WireHandler is a Handler whose payloads can cross process boundaries.
// Cross-shard typed messages are encoded by the sending shard and
// decoded by the owner; handlers must be registered (Executor.BindWire)
// in identical order on every shard so handler ids agree.
type WireHandler interface {
	Handler
	// EncodeArg appends the wire form of arg to dst and returns the
	// extended slice.
	EncodeArg(dst []byte, arg any) []byte
	// DecodeArg reconstructs an argument from its wire form. It must
	// never panic on malformed input.
	DecodeArg(b []byte) (any, error)
	// DropArg releases any pooled resources held by arg. Called for the
	// local copy of every shipped message and for replicated messages
	// that are dropped rather than shipped, so resource ledgers stay
	// balanced.
	DropArg(arg any)
}

// WireMsg is one typed cross-shard message in transit: the destination
// domain, the full merge key assigned by the sender, the bound handler
// id, and the encoded argument.
type WireMsg struct {
	DstDom int32
	At     time.Duration
	Dom    int32
	Seq    uint64
	HID    uint32
	Arg    []byte
}

// inprocTransport is the single-process fast path: no replica domains
// exist, so Exchange has nothing to move, and Agree's decision is a
// pure function of the local vote. Both are allocation-free.
type inprocTransport struct{}

func (inprocTransport) Exchange(x *Executor) error { return nil }

func (inprocTransport) Agree(x *Executor, v Vote) (Decision, error) {
	return Decision{
		NodeNext:    v.Key.At,
		Fallback:    v.EpochRan && v.Delta == 0,
		FallbackKey: v.Key,
	}, nil
}

// OwnerShard maps a domain id onto the shard that executes it. The
// control domain (id 0) is replicated: every shard executes it
// identically, so it is "owned" everywhere and never crosses the wire.
// Node domains are dealt round-robin by creation order.
func OwnerShard(dom int32, shards int) int {
	if dom <= 0 || shards <= 1 {
		return 0
	}
	return int((dom - 1) % int32(shards))
}

// Distribute marks this executor as shard `shard` of `shards`: node
// domains owned by other shards become inert replicas (their events are
// executed by their owner; the local copies exist only so replicated
// construction and control code can hold identical references), and
// cross-shard traffic flows through t at every superstep. Must be
// called before the first Run. Domains created afterwards inherit the
// sharding.
func (x *Executor) Distribute(t DomainTransport, shard, shards int) {
	if x.started {
		panic("sim: Distribute after Run")
	}
	if shards < 1 || shard < 0 || shard >= shards {
		panic("sim: Distribute with invalid shard/shards")
	}
	if t == nil {
		t = inprocTransport{}
	}
	x.transport = t
	x.shard, x.shards = shard, shards
	for _, d := range x.domains[1:] {
		d.remote = OwnerShard(d.id, shards) != shard
	}
}

// Shard returns this executor's shard index and the total shard count
// (0, 1 when not distributed).
func (x *Executor) Shard() (shard, shards int) { return x.shard, x.shards }

// Err returns the sticky transport error that aborted a Run, if any.
func (x *Executor) Err() error { return x.terr }

// BindWire registers h for cross-shard transit and returns its handler
// id. Ids are assigned sequentially in registration order; replicated
// world construction guarantees every shard assigns the same id to the
// same logical handler. Idempotent per handler.
func (x *Executor) BindWire(h WireHandler) uint32 {
	if x.wireIDs == nil {
		x.wireIDs = make(map[WireHandler]uint32)
	}
	if id, ok := x.wireIDs[h]; ok {
		return id
	}
	id := uint32(len(x.wireHandlers))
	x.wireHandlers = append(x.wireHandlers, h)
	x.wireIDs[h] = id
	return id
}

// collectRemote drains every replica domain's pending input into
// encoded wire messages appended to out. Three cases:
//
//   - typed messages originated by an owned node domain: the authentic
//     copy — encode and ship to the destination's owner (the local
//     pooled argument is released).
//   - messages originated by the control domain (closure or typed):
//     control is replicated, so the destination's owner generated its
//     own identical copy locally; drop ours (releasing typed args).
//   - closures originated by a node domain: cannot cross a process
//     boundary — a typed error, not silent loss. Production cross-domain
//     traffic uses the typed Send path (netem links), which is
//     wire-capable.
//
// Barrier context only (called from the transport's Exchange).
func (x *Executor) collectRemote(out []WireMsg) ([]WireMsg, error) {
	for _, d := range x.domains {
		if !d.remote {
			continue
		}
		d.inMu.Lock()
		if len(d.inbox) == 0 && len(d.tin) == 0 {
			d.inMu.Unlock()
			continue
		}
		msgs := d.inbox
		tmsgs := d.tin
		d.inbox = d.spare[:0]
		d.tin = d.tspare[:0]
		d.inboxMin.Store(int64(maxTime))
		d.inMu.Unlock()
		for i := range msgs {
			m := &msgs[i]
			if m.dom != 0 {
				return out, fmt.Errorf("sim: closure SendTo from domain %d into remote domain %d (%s): only typed Send crosses shards", m.dom, d.id, d.label)
			}
			m.fn, m.cancel = nil, nil
		}
		d.spare = msgs[:0]
		for i := range tmsgs {
			m := &tmsgs[i]
			wh, ok := m.h.(WireHandler)
			if !ok {
				return out, fmt.Errorf("sim: handler %T into remote domain %d (%s) is not wire-capable", m.h, d.id, d.label)
			}
			if m.dom != 0 {
				id, bound := x.wireIDs[wh]
				if !bound {
					return out, fmt.Errorf("sim: handler %T into remote domain %d (%s) not registered with BindWire", m.h, d.id, d.label)
				}
				out = append(out, WireMsg{
					DstDom: d.id, At: m.at, Dom: m.dom, Seq: m.seq,
					HID: id, Arg: wh.EncodeArg(nil, m.arg),
				})
			}
			wh.DropArg(m.arg)
			m.h, m.arg = nil, nil
		}
		d.tspare = tmsgs[:0]
	}
	return out, nil
}

// injectWire materializes a message received from another shard into
// its owned destination domain's typed inbox. Barrier context only.
func (x *Executor) injectWire(m WireMsg) error {
	if int(m.HID) >= len(x.wireHandlers) {
		return fmt.Errorf("sim: wire message with unknown handler id %d", m.HID)
	}
	if m.DstDom <= 0 || int(m.DstDom) >= len(x.domains) {
		return fmt.Errorf("sim: wire message for unknown domain %d", m.DstDom)
	}
	d := x.domains[m.DstDom]
	if d.remote {
		return fmt.Errorf("sim: wire message misrouted to replica domain %d (%s)", d.id, d.label)
	}
	h := x.wireHandlers[m.HID]
	arg, err := h.DecodeArg(m.Arg)
	if err != nil {
		return fmt.Errorf("sim: wire decode for domain %d handler %d: %w", m.DstDom, m.HID, err)
	}
	d.inMu.Lock()
	d.tin = append(d.tin, tmsg{at: m.At, dom: m.Dom, seq: m.Seq, h: h, arg: arg})
	if int64(m.At) < d.inboxMin.Load() {
		d.inboxMin.Store(int64(m.At))
	}
	d.inMu.Unlock()
	return nil
}

// localMinKey returns the merge key of the earliest pending event over
// owned node domains (At == maxTime when none). Inboxes must already be
// drained: after deliverAll every pending event sits in a heap.
func (x *Executor) localMinKey() EventKey {
	k := EventKey{At: maxTime}
	for _, d := range x.domains[1:] {
		if d.remote || len(d.heap) == 0 {
			continue
		}
		ev := d.heap[0]
		ek := EventKey{At: ev.at, Dom: ev.dom, Seq: ev.seq}
		if keyLess(ek, k) {
			k = ek
		}
	}
	return k
}

// stepLocalKey runs the event with merge key k if an owned domain holds
// it at its heap head. On shards that do not own k's event it is a
// no-op — exactly one shard steps per fallback round.
func (x *Executor) stepLocalKey(k EventKey) bool {
	for _, d := range x.domains[1:] {
		if d.remote || len(d.heap) == 0 {
			continue
		}
		ev := d.heap[0]
		if ev.at == k.At && ev.dom == k.Dom && ev.seq == k.Seq {
			d.step()
			return true
		}
	}
	return false
}

// fail records a sticky transport error and stops the run.
func (x *Executor) fail(err error) error {
	x.terr = err
	x.stopped.Store(true)
	return err
}

// DomainDigests snapshots every domain's fired-event digest in domain-id
// order (control first). In a sharded run only owned entries are
// authoritative; FoldDigests over the owner-selected vector equals the
// single-process ScheduleDigest.
func (x *Executor) DomainDigests() []uint64 {
	out := make([]uint64, len(x.domains))
	for i, d := range x.domains {
		out[i] = d.digest
	}
	return out
}

// FoldDigests folds per-domain digests in id order exactly as
// Executor.ScheduleDigest does, so a coordinator can merge shard
// reports into the whole-world digest.
func FoldDigests(digests []uint64) uint64 {
	h := fnvOffset
	for _, d := range digests {
		h = (h ^ d) * fnvPrime
	}
	return h
}
