package sim

import (
	"testing"
	"time"
)

func TestTimerStopRemovesEventImmediately(t *testing.T) {
	l := NewLoop(1)
	fired := false
	tm := l.Schedule(time.Second, func() { fired = true })
	if l.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", l.Pending())
	}
	if !tm.Stop() {
		t.Fatal("first Stop returned false")
	}
	// The event must leave the queue at Stop time (freeing its callback),
	// not linger as a dead entry until its deadline.
	if l.Pending() != 0 {
		t.Fatalf("pending after Stop = %d, want 0", l.Pending())
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	l.RunAll()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopMiddleKeepsOrder(t *testing.T) {
	l := NewLoop(1)
	var order []int
	var tms [5]Timer
	for i := 0; i < 5; i++ {
		i := i
		tms[i] = l.Schedule(time.Duration(i+1)*time.Millisecond, func() { order = append(order, i) })
	}
	tms[1].Stop()
	tms[3].Stop()
	l.RunAll()
	want := []int{0, 2, 4}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

func TestTimerStopAfterFireIsStale(t *testing.T) {
	l := NewLoop(1)
	fired1, fired2 := false, false
	tm1 := l.Schedule(time.Millisecond, func() { fired1 = true })
	l.RunAll()
	if !fired1 {
		t.Fatal("timer 1 did not fire")
	}
	// tm1's event is recycled; the next Schedule likely reuses it. The
	// generation stamp must keep the stale handle from cancelling the new
	// event.
	l.Schedule(time.Millisecond, func() { fired2 = true })
	if tm1.Stop() {
		t.Fatal("stale Stop returned true")
	}
	if l.Pending() != 1 {
		t.Fatalf("stale Stop removed the recycled event (pending=%d)", l.Pending())
	}
	l.RunAll()
	if !fired2 {
		t.Fatal("recycled timer did not fire")
	}
}

func TestTimerStopDuringFireIsNoOp(t *testing.T) {
	l := NewLoop(1)
	var self Timer
	ok := true
	self = l.Schedule(time.Millisecond, func() {
		// The event is recycled before the callback runs, so a callback
		// stopping its own timer must be a harmless no-op.
		if self.Stop() {
			ok = false
		}
	})
	l.RunAll()
	if !ok {
		t.Fatal("Stop from inside the firing callback returned true")
	}
}

func TestTimerZeroValue(t *testing.T) {
	var tm Timer
	if !tm.IsZero() {
		t.Fatal("zero Timer not IsZero")
	}
	if tm.Stop() {
		t.Fatal("zero Timer Stop returned true")
	}
	l := NewLoop(1)
	tm = l.Schedule(time.Millisecond, func() {})
	if tm.IsZero() {
		t.Fatal("scheduled Timer reports IsZero")
	}
}

func TestEventFreeListReuse(t *testing.T) {
	l := NewLoop(1)
	n := 0
	// Repeated schedule/fire cycles must not accumulate state: the heap
	// stays bounded and events are recycled through the free list.
	for i := 0; i < 1000; i++ {
		l.Schedule(time.Microsecond, func() { n++ })
		l.RunAll()
	}
	if n != 1000 {
		t.Fatalf("fired %d, want 1000", n)
	}
	if l.Pending() != 0 {
		t.Fatalf("pending = %d after drain", l.Pending())
	}
}
