package sim

import "math"

// RNG is a small, fast, deterministic random source (SplitMix64 core with
// a PCG-style output permutation). It is used instead of math/rand so that
// simulation runs are reproducible across Go releases, and so components
// can derive independent substreams (Fork) without sharing state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed int64) *RNG {
	r := &RNG{state: uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D}
	// Warm up so small seeds do not produce correlated first outputs.
	r.Uint64()
	r.Uint64()
	return r
}

// Fork derives an independent generator from the current state, advancing
// this generator once. Useful to give each simulated component its own
// stream so adding components does not perturb others.
func (r *RNG) Fork() *RNG {
	return &RNG{state: r.Uint64() ^ 0xD1B54A32D192ED03}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Normal returns a normally distributed value (Box–Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Pareto returns a bounded Pareto sample in [min,max] with shape alpha.
// Heavy-tailed service and inter-arrival times in the scheduler and
// cross-traffic models use this.
func (r *RNG) Pareto(alpha, min, max float64) float64 {
	if min >= max {
		return min
	}
	u := r.Float64()
	la := math.Pow(min, alpha)
	ha := math.Pow(max, alpha)
	return math.Pow((ha*la)/(ha-u*(ha-la)), 1/alpha)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
