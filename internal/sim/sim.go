// Package sim provides the discrete-event simulation kernel used by the
// VINI substrate: a virtual clock, an event loop with deterministic
// ordering, and cancellable timers.
//
// All simulated components (links, CPU schedulers, routing protocols,
// traffic generators) are driven from a single Loop, so no locking is
// required inside simulated code. Components written against the Clock
// interface also run unmodified on a real clock (see RealClock), which is
// how the live overlay in internal/overlay reuses the protocol
// implementations.
//
// The event queue is a typed 4-ary min-heap over *event (no interface
// boxing, better cache locality than binary for pop-heavy workloads) and
// event structs recycle through a free list, so the steady-state
// schedule/fire cycle does not allocate.
package sim

import (
	"fmt"
	"time"
)

// Clock is the scheduling surface protocol code is written against.
// Implementations: *Loop (virtual time) and *RealClock (wall time).
type Clock interface {
	// Now returns the current time as an offset from the start of the run.
	Now() time.Duration
	// Schedule arranges for fn to run at Now()+d. It returns a Timer that
	// can cancel the call. d < 0 is treated as 0.
	Schedule(d time.Duration, fn func()) Timer
}

// Timer is a handle to a scheduled callback. It is a small value; the
// zero Timer is valid and Stop on it is a no-op. Because events recycle
// through a free list, the handle carries a generation stamp — a Timer
// whose event has fired (and possibly been reused) safely does nothing.
type Timer struct {
	ev  *event
	gen uint32
	// real backs RealClock timers.
	real *time.Timer
}

// Stop cancels the timer. It reports whether the call was cancelled before
// running. Stopping an already-fired, already-stopped, or zero Timer is a
// no-op. Cancelling removes the event from the queue immediately, so the
// callback closure (and anything it captures) is released right away
// rather than being retained until its deadline pops.
func (t Timer) Stop() bool {
	if t.real != nil {
		return t.real.Stop()
	}
	if t.ev == nil || t.ev.gen != t.gen {
		return false
	}
	t.ev.loop.remove(t.ev)
	return true
}

// IsZero reports whether the timer was never set (the zero value).
// Callers use it where a nil *Timer check would have appeared.
func (t Timer) IsZero() bool { return t.ev == nil && t.real == nil }

type event struct {
	at   time.Duration
	seq  uint64 // tie-break so same-time events run in schedule order
	fn   func()
	idx  int    // position in the heap
	gen  uint32 // incremented on recycle; stale Timers compare unequal
	loop *Loop
	next *event // free-list link
}

// Loop is a single-threaded discrete-event loop with virtual time.
// The zero value is not usable; call NewLoop.
type Loop struct {
	now     time.Duration
	seq     uint64
	heap    []*event // 4-ary min-heap ordered by (at, seq)
	free    *event   // recycled event structs
	stopped bool
	rng     *RNG
}

// NewLoop returns a Loop whose clock starts at zero and whose RNG is
// seeded with seed (runs with equal seeds are bit-identical).
func NewLoop(seed int64) *Loop {
	return &Loop{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (l *Loop) Now() time.Duration { return l.now }

// RNG returns the loop's deterministic random source.
func (l *Loop) RNG() *RNG { return l.rng }

// Schedule implements Clock.
func (l *Loop) Schedule(d time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	if d < 0 {
		d = 0
	}
	l.seq++
	ev := l.alloc()
	ev.at = l.now + d
	ev.seq = l.seq
	ev.fn = fn
	l.push(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// alloc takes an event struct from the free list, or makes one.
func (l *Loop) alloc() *event {
	if ev := l.free; ev != nil {
		l.free = ev.next
		ev.next = nil
		return ev
	}
	return &event{loop: l}
}

// recycle invalidates outstanding Timers for ev and returns it to the
// free list. The callback reference is dropped here, not at pop time.
func (l *Loop) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.next = l.free
	l.free = ev
}

// less orders events by (time, schedule sequence).
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev into the 4-ary heap.
func (l *Loop) push(ev *event) {
	ev.idx = len(l.heap)
	l.heap = append(l.heap, ev)
	l.siftUp(ev.idx)
}

// pop removes and returns the earliest event. The heap must be non-empty.
func (l *Loop) pop() *event {
	h := l.heap
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[0].idx = 0
	h[n] = nil
	l.heap = h[:n]
	if n > 0 {
		l.siftDown(0)
	}
	return ev
}

// remove deletes ev from the heap (timer cancellation) and recycles it.
func (l *Loop) remove(ev *event) {
	h := l.heap
	i := ev.idx
	n := len(h) - 1
	if i != n {
		h[i] = h[n]
		h[i].idx = i
	}
	h[n] = nil
	l.heap = h[:n]
	if i != n {
		l.siftDown(i)
		l.siftUp(i)
	}
	l.recycle(ev)
}

func (l *Loop) siftUp(i int) {
	h := l.heap
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !less(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].idx = i
		i = parent
	}
	h[i] = ev
	ev.idx = i
}

func (l *Loop) siftDown(i int) {
	h := l.heap
	n := len(h)
	ev := h[i]
	for {
		min := -1
		first := 4*i + 1
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if min < 0 || less(h[c], h[min]) {
				min = c
			}
		}
		if min < 0 || !less(h[min], ev) {
			break
		}
		h[i] = h[min]
		h[i].idx = i
		i = min
	}
	h[i] = ev
	ev.idx = i
}

// Stop makes Run return after the event currently executing completes.
func (l *Loop) Stop() { l.stopped = true }

// Pending reports the number of scheduled events. Cancelled events leave
// the queue immediately, so this is exact.
func (l *Loop) Pending() int { return len(l.heap) }

// Step runs the single earliest event. It reports false when the queue is
// empty.
func (l *Loop) Step() bool {
	if len(l.heap) == 0 {
		return false
	}
	ev := l.pop()
	if ev.at > l.now {
		l.now = ev.at
	}
	fn := ev.fn
	// Recycle before running so a Stop on the firing timer is a no-op and
	// the struct is immediately reusable by fn's own Schedule calls.
	l.recycle(ev)
	fn()
	return true
}

// Run executes events until the queue is empty, Stop is called, or the
// next event lies beyond until. Virtual time is left at min(until, time of
// last event run); it advances to until when the queue drains first.
func (l *Loop) Run(until time.Duration) {
	l.stopped = false
	for !l.stopped && len(l.heap) > 0 {
		if l.heap[0].at > until {
			l.now = until
			return
		}
		l.Step()
	}
	if l.now < until {
		l.now = until
	}
}

// RunAll executes events until the queue is empty or Stop is called.
// Unlike Run, it leaves virtual time at the time of the last event run.
func (l *Loop) RunAll() {
	l.stopped = false
	for !l.stopped && l.Step() {
	}
}

// RunUntilStable advances the loop in increments of step until the
// system fingerprint stays unchanged for settle consecutive steps, or
// until max virtual time has elapsed since the call. It returns the
// virtual time consumed and whether stability was reached.
//
// A network under periodic control traffic never drains its event queue
// (hello timers reschedule forever), so "quiescent" cannot mean "no
// events pending". Instead the caller supplies a fingerprint of the
// state it cares about — e.g. a hash over every node's FIB contents —
// and quiescence means the fingerprint stopped moving. This is the
// quiescent-point hook the simtest invariant engine runs checkers at.
func (l *Loop) RunUntilStable(step, max time.Duration, settle int, fingerprint func() uint64) (time.Duration, bool) {
	if step <= 0 {
		panic("sim: RunUntilStable with non-positive step")
	}
	if settle < 1 {
		settle = 1
	}
	start := l.now
	last := fingerprint()
	stable := 0
	for l.now-start < max {
		l.Run(l.now + step)
		if fp := fingerprint(); fp == last {
			stable++
			if stable >= settle {
				return l.now - start, true
			}
		} else {
			last = fp
			stable = 0
		}
	}
	return l.now - start, false
}

// RealClock adapts the wall clock to the Clock interface so protocol code
// written for the simulator drives live deployments (cmd/iiasd). Callbacks
// are delivered on arbitrary goroutines via time.AfterFunc; callers that
// need single-threaded semantics should funnel them through an actor loop
// (internal/overlay does this).
type RealClock struct {
	start time.Time
}

// NewRealClock returns a RealClock anchored at time.Now().
func NewRealClock() *RealClock { return &RealClock{start: time.Now()} }

// Now implements Clock.
func (c *RealClock) Now() time.Duration { return time.Since(c.start) }

// Schedule implements Clock.
func (c *RealClock) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return Timer{real: time.AfterFunc(d, fn)}
}

// String renders a duration as seconds with millisecond precision, the
// format used throughout experiment logs.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}
