// Package sim provides the discrete-event simulation kernel used by the
// VINI substrate: a virtual clock, an event loop with deterministic
// ordering, and cancellable timers.
//
// All simulated components (links, CPU schedulers, routing protocols,
// traffic generators) are driven from a single Loop, so no locking is
// required inside simulated code. Components written against the Clock
// interface also run unmodified on a real clock (see RealClock), which is
// how the live overlay in internal/overlay reuses the protocol
// implementations.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is the scheduling surface protocol code is written against.
// Implementations: *Loop (virtual time) and *RealClock (wall time).
type Clock interface {
	// Now returns the current time as an offset from the start of the run.
	Now() time.Duration
	// Schedule arranges for fn to run at Now()+d. It returns a Timer that
	// can cancel the call. d < 0 is treated as 0.
	Schedule(d time.Duration, fn func()) *Timer
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	ev *event
	// stopReal cancels a RealClock timer.
	stopReal func() bool
}

// Stop cancels the timer. It reports whether the call was cancelled before
// running. Stopping an already-fired or already-stopped timer is a no-op.
func (t *Timer) Stop() bool {
	if t == nil {
		return false
	}
	if t.stopReal != nil {
		return t.stopReal()
	}
	if t.ev == nil || t.ev.fn == nil {
		return false
	}
	t.ev.fn = nil
	return true
}

type event struct {
	at  time.Duration
	seq uint64 // tie-break so same-time events run in schedule order
	fn  func()
	idx int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Loop is a single-threaded discrete-event loop with virtual time.
// The zero value is not usable; call NewLoop.
type Loop struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool
	rng     *RNG
}

// NewLoop returns a Loop whose clock starts at zero and whose RNG is
// seeded with seed (runs with equal seeds are bit-identical).
func NewLoop(seed int64) *Loop {
	return &Loop{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (l *Loop) Now() time.Duration { return l.now }

// RNG returns the loop's deterministic random source.
func (l *Loop) RNG() *RNG { return l.rng }

// Schedule implements Clock.
func (l *Loop) Schedule(d time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	if d < 0 {
		d = 0
	}
	l.seq++
	ev := &event{at: l.now + d, seq: l.seq, fn: fn}
	heap.Push(&l.queue, ev)
	return &Timer{ev: ev}
}

// Stop makes Run return after the event currently executing completes.
func (l *Loop) Stop() { l.stopped = true }

// Pending reports the number of scheduled (possibly cancelled) events.
func (l *Loop) Pending() int { return len(l.queue) }

// Step runs the single earliest event. It reports false when the queue is
// empty.
func (l *Loop) Step() bool {
	for len(l.queue) > 0 {
		ev := heap.Pop(&l.queue).(*event)
		if ev.fn == nil { // cancelled
			continue
		}
		if ev.at > l.now {
			l.now = ev.at
		}
		fn := ev.fn
		ev.fn = nil
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty, Stop is called, or the
// next event lies beyond until. Virtual time is left at min(until, time of
// last event run); it advances to until when the queue drains first.
func (l *Loop) Run(until time.Duration) {
	l.stopped = false
	for !l.stopped {
		// Peek for the horizon without executing.
		var next *event
		for len(l.queue) > 0 {
			if l.queue[0].fn == nil {
				heap.Pop(&l.queue)
				continue
			}
			next = l.queue[0]
			break
		}
		if next == nil {
			break
		}
		if next.at > until {
			l.now = until
			return
		}
		l.Step()
	}
	if l.now < until {
		l.now = until
	}
}

// RunAll executes events until the queue is empty or Stop is called.
// Unlike Run, it leaves virtual time at the time of the last event run.
func (l *Loop) RunAll() {
	l.stopped = false
	for !l.stopped && l.Step() {
	}
}

// RealClock adapts the wall clock to the Clock interface so protocol code
// written for the simulator drives live deployments (cmd/iiasd). Callbacks
// are delivered on arbitrary goroutines via time.AfterFunc; callers that
// need single-threaded semantics should funnel them through an actor loop
// (internal/overlay does this).
type RealClock struct {
	start time.Time
}

// NewRealClock returns a RealClock anchored at time.Now().
func NewRealClock() *RealClock { return &RealClock{start: time.Now()} }

// Now implements Clock.
func (c *RealClock) Now() time.Duration { return time.Since(c.start) }

// Schedule implements Clock.
func (c *RealClock) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	t := time.AfterFunc(d, fn)
	return &Timer{stopReal: t.Stop}
}

// String renders a duration as seconds with millisecond precision, the
// format used throughout experiment logs.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}
