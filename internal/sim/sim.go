// Package sim provides the discrete-event simulation kernel used by the
// VINI substrate: a virtual clock, deterministic event ordering, and
// cancellable timers.
//
// Time is organized into Domains — sequential event timelines, one per
// physical node plus one control timeline — coordinated by an Executor
// that runs independent domains on parallel workers under conservative
// (lookahead-based) synchronization. Events are totally ordered by the
// merge key (timestamp, origin domain id, origin sequence), so results
// are byte-identical regardless of GOMAXPROCS or thread interleaving.
// See Executor for the synchronization algorithm.
//
// Loop is the classic single-timeline façade: NewLoop returns a
// one-domain executor whose behavior is identical to the historical
// global loop, and all simulated components written against the Clock
// interface run unmodified inside a Domain, on a Loop, or on a real
// clock (see RealClock, which is how the live overlay in
// internal/overlay reuses the protocol implementations).
//
// Each domain's event queue is a typed 4-ary min-heap over *event (no
// interface boxing, better cache locality than binary for pop-heavy
// workloads) and event structs recycle through a per-domain free list,
// so the steady-state schedule/fire cycle does not allocate.
package sim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is the scheduling surface protocol code is written against.
// Implementations: *Loop and *Domain (virtual time) and *RealClock
// (wall time).
type Clock interface {
	// Now returns the current time as an offset from the start of the run.
	Now() time.Duration
	// Schedule arranges for fn to run at Now()+d. It returns a Timer that
	// can cancel the call. d < 0 is treated as 0.
	Schedule(d time.Duration, fn func()) Timer
}

// Timer is a handle to a scheduled callback. It is a small value; the
// zero Timer is valid and Stop on it is a no-op. Because events recycle
// through a free list, the handle carries a generation stamp — a Timer
// whose event has fired (and possibly been reused) safely does nothing.
// Timers returned by Domain.SendTo for cross-domain sends carry a
// shared cancellation flag instead of a heap reference, since the
// destination heap belongs to another worker.
type Timer struct {
	ev  *event
	gen uint32
	// cancel backs cross-domain and tick-wheel timers (lazy
	// cancellation).
	cancel *atomic.Uint32
	// wentry additionally backs TickWheel timers: Stop routes through
	// the wheel so a slot whose last entry is cancelled releases its
	// underlying heap event.
	wentry *wheelEntry
	// real backs RealClock timers.
	real *time.Timer
}

// Stop cancels the timer. It reports whether the call was cancelled before
// running. Stopping an already-fired, already-stopped, or zero Timer is a
// no-op. For in-domain timers, cancelling removes the event from the
// queue immediately, so the callback closure (and anything it captures)
// is released right away rather than being retained until its deadline
// pops. Cross-domain timers cancel lazily: the flag flips now and the
// owning domain discards the message at delivery or fire time, so the
// event is recycled exactly once no matter which side wins the race.
func (t Timer) Stop() bool {
	if t.real != nil {
		return t.real.Stop()
	}
	if t.wentry != nil {
		return t.wentry.stop()
	}
	if t.cancel != nil {
		return t.cancel.CompareAndSwap(timerPending, timerStopped)
	}
	if t.ev == nil || t.ev.gen != t.gen {
		return false
	}
	t.ev.owner.remove(t.ev)
	return true
}

// IsZero reports whether the timer was never set (the zero value).
// Callers use it where a nil *Timer check would have appeared.
func (t Timer) IsZero() bool { return t.ev == nil && t.cancel == nil && t.real == nil }

// Pending reports whether the timer's callback is still scheduled: not
// yet fired and not stopped. For in-domain timers the generation stamp
// answers exactly; for cross-domain timers the shared cancellation flag
// does. RealClock timers report false — the wall clock offers no
// portable way to inspect a time.Timer, and the lifecycle audits that
// need Pending only run in simulation.
func (t Timer) Pending() bool {
	if t.real != nil {
		return false
	}
	if t.cancel != nil {
		return t.cancel.Load() == timerPending
	}
	return t.ev != nil && t.ev.gen == t.gen
}

type event struct {
	at  time.Duration
	dom int32  // origin domain id (merge-key component)
	seq uint64 // origin sequence; ties break in schedule order
	fn  func()
	// h/arg back typed events (Send): no closure is allocated, the
	// long-lived Handler and its payload ride in the struct directly.
	h   Handler
	arg any
	idx int    // position in the heap
	gen uint32 // incremented on recycle; stale Timers compare unequal
	// cancel is non-nil for cross-domain events (lazy cancellation).
	cancel *atomic.Uint32
	owner  *Domain
	next   *event // free-list link
}

// Loop is the single-timeline façade over a one-or-more-domain
// Executor. It embeds the control domain, so it is a Clock (Now,
// Schedule, RNG act on the control timeline), and its Run family
// drives the whole executor. The zero value is not usable; call
// NewLoop or Executor.Loop.
type Loop struct {
	*Domain
	exec *Executor
}

// NewLoop returns a single-domain Loop whose clock starts at zero and
// whose RNG is seeded with seed (runs with equal seeds are
// bit-identical). Behavior matches the historical global event loop
// exactly.
func NewLoop(seed int64) *Loop {
	return NewExecutor(seed, 1).Loop()
}

// Executor returns the coordinating executor (for creating node
// domains and reading parallel-run statistics).
func (l *Loop) Executor() *Executor { return l.exec }

// Stop makes Run return after the event currently executing completes.
func (l *Loop) Stop() { l.exec.Stop() }

// Pending reports the number of scheduled events across all domains.
// Cancelled in-domain events leave the queue immediately, so with a
// single domain this is exact.
func (l *Loop) Pending() int { return l.exec.Pending() }

// Step runs the single globally earliest event. It reports false when
// every queue is empty.
func (l *Loop) Step() bool { return l.exec.step() }

// Run executes events until every queue is empty, Stop is called, or the
// next event lies beyond until. Virtual time is left at min(until, time of
// last event run); it advances to until when the queue drains first.
func (l *Loop) Run(until time.Duration) { l.exec.Run(until) }

// RunAll executes events until the queue is empty or Stop is called.
// Unlike Run, it leaves virtual time at the time of the last event run.
func (l *Loop) RunAll() { l.exec.RunAll() }

// RunUntilStable advances the loop in increments of step until the
// system fingerprint stays unchanged for settle consecutive steps, or
// until max virtual time has elapsed since the call. It returns the
// virtual time consumed and whether stability was reached.
//
// A network under periodic control traffic never drains its event queue
// (hello timers reschedule forever), so "quiescent" cannot mean "no
// events pending". Instead the caller supplies a fingerprint of the
// state it cares about — e.g. a hash over every node's FIB contents —
// and quiescence means the fingerprint stopped moving. This is the
// quiescent-point hook the simtest invariant engine runs checkers at.
func (l *Loop) RunUntilStable(step, max time.Duration, settle int, fingerprint func() uint64) (time.Duration, bool) {
	if step <= 0 {
		panic("sim: RunUntilStable with non-positive step")
	}
	if settle < 1 {
		settle = 1
	}
	start := l.Now()
	last := fingerprint()
	stable := 0
	for l.Now()-start < max {
		l.Run(l.Now() + step)
		if fp := fingerprint(); fp == last {
			stable++
			if stable >= settle {
				return l.Now() - start, true
			}
		} else {
			last = fp
			stable = 0
		}
	}
	return l.Now() - start, false
}

// RealClock adapts the wall clock to the Clock interface so protocol code
// written for the simulator drives live deployments (cmd/iiasd). Callbacks
// are delivered on arbitrary goroutines via time.AfterFunc; callers that
// need single-threaded semantics should funnel them through an actor loop
// (internal/overlay does this).
type RealClock struct {
	start time.Time
}

// NewRealClock returns a RealClock anchored at time.Now().
func NewRealClock() *RealClock { return &RealClock{start: time.Now()} }

// Now implements Clock.
func (c *RealClock) Now() time.Duration { return time.Since(c.start) }

// Schedule implements Clock.
func (c *RealClock) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return Timer{real: time.AfterFunc(d, fn)}
}

// String renders a duration as seconds with millisecond precision, the
// format used throughout experiment logs.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}
