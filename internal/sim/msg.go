package sim

import (
	"time"
)

// Handler is the typed callback carried by pooled cross-domain messages
// and typed local events. Implementations are long-lived objects (a link
// direction, a socket, a protocol instance), so scheduling through a
// Handler costs no closure allocation: the event stores the interface
// pair (h, arg) and the payload travels as arg. Invoke runs in the
// destination domain at the event's timestamp.
type Handler interface {
	Invoke(arg any)
}

// tmsg is a typed, pooled cross-domain message: "invoke h(arg) in the
// receiving domain at virtual time at". (dom, seq) is the sender's
// unique key, slotting the message into the deterministic global merge
// order (at, dom, seq) no matter when the train carrying it is flushed.
// Unlike xmsg there is no cancellation flag: typed sends are
// fire-and-forget (packet deliveries), which is what makes them
// allocation-free.
type tmsg struct {
	at  time.Duration
	dom int32
	seq uint64
	h   Handler
	arg any
}

// train accumulates this domain's typed messages for one destination
// between flushes. A burst of N packets over one cross-domain link costs
// N slice appends plus a single lock acquisition at flush time, instead
// of the N allocations and N lock acquisitions the closure-based SendTo
// path pays.
type train struct {
	dst   *Domain
	msgs  []tmsg
	dirty bool
}

// inEdge is one registered cross-domain link into a domain: messages
// from src arrive no earlier than src's published execution bound plus
// delay. Per-pair edges give each receiver an adaptive horizon (each
// neighbor constrains it by its own delay) instead of the single
// worst-case min inbound delay.
type inEdge struct {
	src   *Domain
	delay time.Duration
}

// ObserveInboundLink registers a cross-domain edge src -> d with the
// given propagation delay. Once any edge is registered the domain's
// horizon is computed per-pair over its registered edges only, so every
// sender into an edge-registered domain must register its edge (netem
// does this for every link at AddLink time). ObserveInboundLatency
// remains the coarse alternative: it constrains the domain by every
// other domain at the single minimum delay.
func (d *Domain) ObserveInboundLink(src *Domain, delay time.Duration) {
	if delay < 0 {
		delay = 0
	}
	d.edged = true
	for i := range d.ins {
		if d.ins[i].src == src {
			if delay < d.ins[i].delay {
				d.ins[i].delay = delay
				d.ObserveInboundLatency(delay)
			}
			return
		}
	}
	d.ins = append(d.ins, inEdge{src: src, delay: delay})
	d.ObserveInboundLatency(delay)
	for _, o := range src.outs {
		if o == d {
			return
		}
	}
	src.outs = append(src.outs, d)
}

// Send arranges for h.Invoke(arg) to run in dst at this domain's
// Now()+delay. Same-domain sends become ordinary local events.
// Cross-domain sends append to the per-(src,dst) train, which the
// executor flushes into dst's inbox once per execution window — the
// allocation-free, lock-amortized replacement for SendTo on the
// per-packet data path. There is no Timer: typed sends cannot be
// cancelled.
func (d *Domain) Send(dst *Domain, delay time.Duration, h Handler, arg any) {
	if h == nil {
		panic("sim: Send with nil handler")
	}
	if d.remote {
		// Replica of a domain owned elsewhere: this send is replicated
		// driver-time code, and the owning shard's copy is the authentic
		// one. Pushing here would strand the event on a never-drained
		// heap (same-domain) or double-deliver (cross-domain). Release
		// the payload if the handler knows how.
		if w, ok := h.(WireHandler); ok {
			w.DropArg(arg)
		}
		return
	}
	if delay < 0 {
		delay = 0
	}
	if dst == d {
		d.seq++
		d.stats.Scheduled++
		ev := d.alloc()
		ev.at = d.now + delay
		ev.dom = d.id
		ev.seq = d.seq
		ev.h, ev.arg = h, arg
		d.push(ev)
		return
	}
	d.seq++
	d.stats.Sent++
	t := d.trainFor(dst)
	t.msgs = append(t.msgs, tmsg{at: d.now + delay, dom: d.id, seq: d.seq, h: h, arg: arg})
	if !t.dirty {
		t.dirty = true
		d.dirtyTrains = append(d.dirtyTrains, t)
	}
}

// trainFor returns the accumulation buffer for dst, creating the
// per-destination table on first use. Domains are fixed before the
// first Run, so the table is indexed by domain id.
func (d *Domain) trainFor(dst *Domain) *train {
	if len(d.trains) < len(d.exec.domains) {
		grown := make([]*train, len(d.exec.domains))
		copy(grown, d.trains)
		d.trains = grown
	}
	t := d.trains[dst.id]
	if t == nil {
		if dst.edged {
			found := false
			for _, e := range dst.ins {
				if e.src == d {
					found = true
					break
				}
			}
			if !found {
				panic("sim: Send to edge-registered domain " + dst.label +
					" from unregistered source " + d.label +
					" (missing ObserveInboundLink)")
			}
		}
		t = &train{dst: dst}
		d.trains[dst.id] = t
	}
	return t
}

// flushTrains appends every dirty train to its destination's inbox, one
// lock acquisition per destination, and returns how many destinations
// received messages (the flushed trains are recorded in d.flushed for
// the executor's wake-up pass). Runs in the owning domain's context
// (worker window end) or at a barrier.
func (d *Domain) flushTrains() int {
	if len(d.dirtyTrains) == 0 {
		return 0
	}
	n := 0
	d.flushed = d.flushed[:0]
	for _, t := range d.dirtyTrains {
		if len(t.msgs) > 0 {
			// Arrivals within a train need not be sorted (a train can
			// aggregate several links to the same node), so the inbox
			// minimum is the min over the whole batch.
			min := t.msgs[0].at
			for i := 1; i < len(t.msgs); i++ {
				if t.msgs[i].at < min {
					min = t.msgs[i].at
				}
			}
			dst := t.dst
			dst.inMu.Lock()
			dst.tin = append(dst.tin, t.msgs...)
			if int64(min) < dst.inboxMin.Load() {
				dst.inboxMin.Store(int64(min))
			}
			dst.inMu.Unlock()
			d.stats.TrainMsgs += uint64(len(t.msgs))
			d.stats.Trains++
			for i := range t.msgs {
				t.msgs[i].h, t.msgs[i].arg = nil, nil
			}
			t.msgs = t.msgs[:0]
			n++
			d.flushed = append(d.flushed, dst)
		}
		t.dirty = false
	}
	d.dirtyTrains = d.dirtyTrains[:0]
	return n
}

// trainBacklog counts not-yet-flushed outbound messages (Pending
// support; barrier context).
func (d *Domain) trainBacklog() int {
	n := 0
	for _, t := range d.dirtyTrains {
		n += len(t.msgs)
	}
	return n
}
