package sim

import (
	"fmt"
	"testing"
	"time"
)

// recorder is a typed message Handler that appends each delivery to a
// trace owned by the destination domain.
type recorder struct {
	d     *Domain
	trace *[]string
}

func (r *recorder) Invoke(arg any) {
	*r.trace = append(*r.trace, fmt.Sprintf("%v:%v", r.d.Now(), arg))
}

// TestTrainOrderAcrossHorizon: typed messages batched into trains must
// fire at the destination in merge-key order even when a train spans a
// horizon boundary — some messages deliverable in the current window,
// later ones only after the source republishes its bound. The source
// deliberately sends at exactly the edge delay (landing on the boundary
// itself), just inside, and well beyond it, interleaved with local
// destination events, and the resulting trace must be byte-identical
// across worker counts.
func TestTrainOrderAcrossHorizon(t *testing.T) {
	run := func(workers int) (uint64, []string, []string) {
		const edge = time.Millisecond
		x := NewExecutor(11, workers)
		defer x.Shutdown()
		a := x.NewDomain("a")
		b := x.NewDomain("b")
		b.ObserveInboundLink(a, edge)
		a.ObserveInboundLink(b, edge)

		var btrace, atrace []string
		rb := &recorder{d: b, trace: &btrace}
		ra := &recorder{d: a, trace: &atrace}

		var tick func()
		n := 0
		tick = func() {
			if n++; n > 40 {
				return
			}
			// One message exactly at the horizon boundary, one just
			// beyond, one far beyond (delivered only in a later window),
			// with a deterministic jitter draw from a's own stream.
			a.Send(b, edge, rb, n*3)
			a.Send(b, edge+time.Duration(a.RNG().Intn(50))*time.Microsecond, rb, n*3+1)
			a.Send(b, 3*edge+edge/2, rb, n*3+2)
			a.Schedule(edge/4, tick)
		}
		a.Schedule(0, tick)
		// b runs its own periodic work and replies, so trains flow both
		// ways and b's heap interleaves local and delivered events.
		var pong func()
		m := 0
		pong = func() {
			if m++; m > 60 {
				return
			}
			b.Send(a, edge, ra, -m)
			b.Schedule(edge/3, pong)
		}
		b.Schedule(0, pong)
		x.Run(50 * time.Millisecond)
		if tr, msgs := x.TrainStats(); tr == 0 || msgs < 120 {
			t.Errorf("workers=%d: trains=%d msgs=%d — cross-domain sends did not ride trains", workers, tr, msgs)
		}
		return x.ScheduleDigest(), btrace, atrace
	}

	d1, b1, a1 := run(1)
	d4, b4, a4 := run(4)
	if d1 != d4 {
		t.Fatalf("digest diverged: %016x vs %016x", d1, d4)
	}
	if len(b1) != 3*40 || len(a1) != 60 {
		t.Fatalf("trace lengths %d, %d — want 120, 60", len(b1), len(a1))
	}
	for i := range b1 {
		if b1[i] != b4[i] {
			t.Fatalf("b trace[%d]: %q vs %q", i, b1[i], b4[i])
		}
	}
	for i := range a1 {
		if a1[i] != a4[i] {
			t.Fatalf("a trace[%d]: %q vs %q", i, a1[i], a4[i])
		}
	}
}

// TestWorkStealDeterminism: many domains with deliberately unbalanced
// load on few workers force the work-stealing scheduler through
// owner-pop, steal, and park paths — and the schedule must still replay
// byte-identically against the sequential run, twice.
func TestWorkStealDeterminism(t *testing.T) {
	run := func(workers int) uint64 {
		const n = 16
		x := NewExecutor(5, workers)
		defer x.Shutdown()
		doms := make([]*Domain, n)
		for i := range doms {
			doms[i] = x.NewDomain(fmt.Sprintf("n%d", i))
		}
		for i := range doms {
			for j := range doms {
				if i != j {
					doms[i].ObserveInboundLink(doms[j], time.Millisecond)
				}
			}
		}
		for i := range doms {
			i := i
			d := doms[i]
			var tick func()
			k := 0
			tick = func() {
				if k++; k > 30 {
					return
				}
				// Unbalanced: domain i does i+1 units of local work,
				// then scatters messages to two neighbors.
				for w := 0; w <= i; w++ {
					d.Schedule(time.Duration(d.RNG().Intn(200))*time.Microsecond, func() {})
				}
				d.Send(doms[(i+1)%n], time.Millisecond, &recorder{d: doms[(i+1)%n], trace: new([]string)}, i)
				d.Send(doms[(i*7+3)%n], 2*time.Millisecond, &recorder{d: doms[(i*7+3)%n], trace: new([]string)}, i)
				d.Schedule(500*time.Microsecond, tick)
			}
			d.Schedule(0, tick)
		}
		x.Run(40 * time.Millisecond)
		return x.ScheduleDigest()
	}
	seq := run(1)
	p1 := run(4)
	p2 := run(4)
	if seq != p1 || p1 != p2 {
		t.Fatalf("digests diverged: seq %016x, 4w %016x, 4w again %016x", seq, p1, p2)
	}
}

// TestZeroLookaheadCycleFallback: a three-domain cycle of zero-delay
// edges has no usable lookahead anywhere — every horizon computes below
// the domain's own clock — so the executor must detect the stall and
// take the sequential global-min fallback, still completing the token
// ring deterministically.
func TestZeroLookaheadCycleFallback(t *testing.T) {
	run := func(workers int) (int, uint64, uint64) {
		x := NewExecutor(13, workers)
		defer x.Shutdown()
		a := x.NewDomain("a")
		b := x.NewDomain("b")
		c := x.NewDomain("c")
		b.ObserveInboundLink(a, 0)
		c.ObserveInboundLink(b, 0)
		a.ObserveInboundLink(c, 0)
		hops := 0
		var ab, bc, ca handlerFunc
		ab = func(any) { hops++; b.Send(c, 0, bc, nil) }
		bc = func(any) { hops++; c.Send(a, 0, ca, nil) }
		ca = func(any) {
			hops++
			if hops < 300 {
				a.Send(b, 0, ab, nil)
			}
		}
		a.Schedule(0, func() { a.Send(b, 0, ab, nil) })
		x.Run(time.Millisecond)
		return hops, x.Fallbacks(), x.ScheduleDigest()
	}
	h1, f1, d1 := run(1)
	h4, f4, d4 := run(4)
	if h1 != 300 || h4 != 300 {
		t.Fatalf("hops %d and %d, want 300", h1, h4)
	}
	if f1 == 0 || f4 == 0 {
		t.Fatalf("zero-lookahead cycle never fell back (fallbacks %d, %d)", f1, f4)
	}
	if d1 != d4 {
		t.Fatalf("fallback digests diverged: %016x vs %016x", d1, d4)
	}
}

// handlerFunc adapts a func to Handler for tests.
type handlerFunc func(any)

func (f handlerFunc) Invoke(arg any) { f(arg) }

// TestCrossDomainSendSteadyStateAllocs: after warmup (event free lists
// primed, train buffers and inbox slices grown), the cross-domain
// Send→train→flush→deliver→fire cycle must not allocate — this is the
// per-packet path of the sharded network simulator.
func TestCrossDomainSendSteadyStateAllocs(t *testing.T) {
	const edge = time.Millisecond
	x := NewExecutor(17, 1)
	defer x.Shutdown()
	a := x.NewDomain("a")
	b := x.NewDomain("b")
	b.ObserveInboundLink(a, edge)
	a.ObserveInboundLink(b, edge)
	fired := 0
	h := handlerFunc(func(any) { fired++ })
	payload := new(int)

	until := time.Duration(0)
	cycle := func() {
		for i := 0; i < 64; i++ {
			a.Send(b, edge+time.Duration(i)*time.Microsecond, h, payload)
		}
		until += 5 * edge
		x.Run(until)
	}
	// Warm: grow free lists, train capacity, inbox capacity, heaps.
	for i := 0; i < 5; i++ {
		cycle()
	}
	avg := testing.AllocsPerRun(50, cycle)
	perMsg := avg / 64
	if perMsg > 0.02 {
		t.Fatalf("cross-domain steady state allocates %.3f allocs/message (%.1f per cycle), want 0",
			perMsg, avg)
	}
	if fired == 0 {
		t.Fatal("no messages fired")
	}
}
