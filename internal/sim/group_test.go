package sim

import (
	"testing"
	"time"
)

func TestTimerPending(t *testing.T) {
	l := NewLoop(1)
	fired := false
	tm := l.Schedule(10*time.Millisecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("fresh timer should be pending")
	}
	l.Run(20 * time.Millisecond)
	if !fired {
		t.Fatal("timer did not fire")
	}
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	tm2 := l.Schedule(10*time.Millisecond, func() {})
	tm2.Stop()
	if tm2.Pending() {
		t.Fatal("stopped timer still pending")
	}
	var zero Timer
	if zero.Pending() {
		t.Fatal("zero timer pending")
	}
}

func TestTimerGroupStopAll(t *testing.T) {
	l := NewLoop(1)
	g := NewTimerGroup(l)
	fired := 0
	for i := 0; i < 5; i++ {
		g.Schedule(time.Duration(i+1)*time.Second, func() { fired++ })
	}
	if got := g.Live(); got != 5 {
		t.Fatalf("Live = %d, want 5", got)
	}
	l.Run(1500 * time.Millisecond) // first timer fires, self-deletes
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if got := g.Live(); got != 4 {
		t.Fatalf("Live after one fire = %d, want 4", got)
	}
	if n := g.StopAll(); n != 4 {
		t.Fatalf("StopAll cancelled %d, want 4", n)
	}
	if l.Pending() != 0 {
		t.Fatalf("heap not empty after StopAll: %d pending", l.Pending())
	}
	l.Run(10 * time.Second)
	if fired != 1 {
		t.Fatalf("cancelled timers fired: %d", fired)
	}
	// A stopped group refuses new work.
	tm := g.Schedule(time.Second, func() { fired++ })
	if !tm.IsZero() {
		t.Fatal("stopped group returned a live timer")
	}
	l.Run(20 * time.Second)
	if fired != 1 {
		t.Fatal("schedule-after-stop fired")
	}
}

// TestTimerGroupPeriodicReschedule models the OSPF hello pattern: a
// callback that re-arms itself through the group. StopAll must break
// the chain even mid-flight.
func TestTimerGroupPeriodicReschedule(t *testing.T) {
	l := NewLoop(1)
	g := NewTimerGroup(l)
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		g.Schedule(time.Second, tick)
	}
	g.Schedule(time.Second, tick)
	l.Run(3500 * time.Millisecond)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
	g.StopAll()
	if l.Pending() != 0 {
		t.Fatalf("pending after StopAll: %d", l.Pending())
	}
	l.Run(10 * time.Second)
	if ticks != 3 {
		t.Fatalf("periodic survived StopAll: %d ticks", ticks)
	}
}

// TestTimerGroupSweep checks that entries stopped through their own
// handles do not accumulate.
func TestTimerGroupSweep(t *testing.T) {
	l := NewLoop(1)
	g := NewTimerGroup(l)
	for i := 0; i < 1000; i++ {
		tm := g.Schedule(time.Hour, func() {})
		tm.Stop() // stale entry; the group must compact these
	}
	if len(g.timers) >= 1000 {
		t.Fatalf("group retained %d stale entries", len(g.timers))
	}
	if g.Live() != 0 {
		t.Fatalf("Live = %d, want 0", g.Live())
	}
}
