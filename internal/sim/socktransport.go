package sim

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"
)

// DefaultWireTimeout bounds every blocking socket operation in the
// shard protocol (handshake, superstep reads and writes, shutdown).
// A peer that dies mid-epoch surfaces as a typed TransportError within
// this deadline instead of a hang.
const DefaultWireTimeout = 30 * time.Second

// shardConn is one framed peer connection with per-connection reuse
// buffers (frames alias rbuf until the next read on the same
// connection).
type shardConn struct {
	c    net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	rbuf []byte
	wbuf []byte
}

func newShardConn(c net.Conn) *shardConn {
	return &shardConn{
		c:  c,
		br: bufio.NewReaderSize(c, 1<<16),
		bw: bufio.NewWriterSize(c, 1<<16),
	}
}

// write sends pre-encoded frames and flushes, under a deadline.
func (sc *shardConn) write(timeout time.Duration, frames []byte) error {
	if err := sc.c.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	if _, err := sc.bw.Write(frames); err != nil {
		return err
	}
	return sc.bw.Flush()
}

// read returns the next frame under a deadline. A FAIL frame decodes
// into an error carrying the peer's reason.
func (sc *shardConn) read(timeout time.Duration) (byte, []byte, error) {
	if err := sc.c.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return 0, nil, err
	}
	typ, payload, buf, err := readFrame(sc.br, sc.rbuf)
	sc.rbuf = buf
	if err != nil {
		return 0, nil, err
	}
	if typ == frameFail {
		return typ, nil, fmt.Errorf("peer aborted: %s", decodeFail(payload))
	}
	return typ, payload, nil
}

func (sc *shardConn) close() {
	if sc != nil && sc.c != nil {
		sc.c.Close()
	}
}

// expect reads a frame and checks its type and superstep counter
// (parsed by parse, which returns the step it found).
func expectStep(got, want uint64) error {
	if got != want {
		return fmt.Errorf("superstep desync: got %d, want %d", got, want)
	}
	return nil
}

// SockWorker is the DomainTransport for a worker shard: it pairs with a
// SockCoordinator over one stream connection and follows the star
// superstep protocol (send TRAINS+MARK, receive TRAINS+MARK; send VOTE,
// receive GRANT).
type SockWorker struct {
	shard   int
	shards  int
	timeout time.Duration
	conn    *shardConn
	step    uint64
	scratch []WireMsg
	payload []byte
}

// DialCoordinator connects to a coordinator, performs the
// HELLO/WELCOME handshake claiming the given shard id, and returns the
// transport plus the coordinator's opaque application payload (the
// scenario the worker must replicate). timeout <= 0 selects
// DefaultWireTimeout.
func DialCoordinator(addr string, shard int, timeout time.Duration) (*SockWorker, []byte, error) {
	if timeout <= 0 {
		timeout = DefaultWireTimeout
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, nil, &TransportError{Shard: 0, Op: "dial", Err: err}
	}
	return attachWorker(c, shard, timeout)
}

// AttachWorker runs the worker side of the handshake over an existing
// connection (tests use in-process pipes and pre-dialed sockets).
func AttachWorker(c net.Conn, shard int, timeout time.Duration) (*SockWorker, []byte, error) {
	if timeout <= 0 {
		timeout = DefaultWireTimeout
	}
	return attachWorker(c, shard, timeout)
}

func attachWorker(c net.Conn, shard int, timeout time.Duration) (*SockWorker, []byte, error) {
	sc := newShardConn(c)
	if err := sc.write(timeout, appendHello(nil, int32(shard))); err != nil {
		sc.close()
		return nil, nil, &TransportError{Shard: 0, Op: "hello", Err: err}
	}
	typ, p, err := sc.read(timeout)
	if err == nil && typ != frameWelcome {
		err = fmt.Errorf("unexpected frame type %d", typ)
	}
	if err != nil {
		sc.close()
		return nil, nil, &TransportError{Shard: 0, Op: "welcome", Err: err}
	}
	shards, confirmed, payload, err := decodeWelcome(p)
	if err == nil && int(confirmed) != shard {
		err = fmt.Errorf("coordinator assigned shard %d, claimed %d", confirmed, shard)
	}
	if err != nil {
		sc.close()
		return nil, nil, &TransportError{Shard: 0, Op: "welcome", Err: err}
	}
	pl := append([]byte(nil), payload...)
	return &SockWorker{shard: shard, shards: int(shards), timeout: timeout,
		conn: sc, payload: pl}, pl, nil
}

// Shards returns the total shard count announced by the coordinator.
func (t *SockWorker) Shards() int { return t.shards }

// Close tears the connection down.
func (t *SockWorker) Close() { t.conn.close() }

// abort sends a best-effort FAIL to the coordinator and returns the
// typed error.
func (t *SockWorker) abort(op string, err error) error {
	_ = t.conn.write(t.timeout, appendFail(t.conn.wbuf[:0], err.Error()))
	return &TransportError{Shard: 0, Op: op, Err: err}
}

// Exchange implements DomainTransport: ship locally collected
// cross-shard messages to the coordinator (which routes them to their
// owners) and inject the batch routed here.
func (t *SockWorker) Exchange(x *Executor) error {
	t.step++
	out, err := x.collectRemote(t.scratch[:0])
	t.scratch = out[:0]
	if err != nil {
		return t.abort("collect", err)
	}
	b := appendTrains(t.conn.wbuf[:0], t.step, out)
	b = appendMark(b, t.step)
	t.conn.wbuf = b
	if err := t.conn.write(t.timeout, b); err != nil {
		return &TransportError{Shard: 0, Op: "send trains", Err: err}
	}
	typ, p, err := t.conn.read(t.timeout)
	if err == nil && typ != frameTrains {
		err = fmt.Errorf("unexpected frame type %d", typ)
	}
	if err != nil {
		return &TransportError{Shard: 0, Op: "recv trains", Err: err}
	}
	step, msgs, err := decodeTrains(p)
	if err == nil {
		err = expectStep(step, t.step)
	}
	if err != nil {
		return t.abort("recv trains", err)
	}
	for i := range msgs {
		if err := x.injectWire(msgs[i]); err != nil {
			return t.abort("inject", err)
		}
	}
	typ, p, err = t.conn.read(t.timeout)
	if err == nil && typ != frameMark {
		err = fmt.Errorf("unexpected frame type %d", typ)
	}
	if err == nil {
		var step uint64
		if step, err = decodeMark(p); err == nil {
			err = expectStep(step, t.step)
		}
	}
	if err != nil {
		return &TransportError{Shard: 0, Op: "recv mark", Err: err}
	}
	return nil
}

// Agree implements DomainTransport: send the local vote, receive the
// coordinator's decision.
func (t *SockWorker) Agree(x *Executor, v Vote) (Decision, error) {
	b := appendVote(t.conn.wbuf[:0], t.step, v)
	t.conn.wbuf = b
	if err := t.conn.write(t.timeout, b); err != nil {
		return Decision{}, &TransportError{Shard: 0, Op: "send vote", Err: err}
	}
	typ, p, err := t.conn.read(t.timeout)
	if err == nil && typ != frameGrant {
		err = fmt.Errorf("unexpected frame type %d", typ)
	}
	if err != nil {
		return Decision{}, &TransportError{Shard: 0, Op: "recv grant", Err: err}
	}
	step, dec, err := decodeGrant(p)
	if err == nil {
		err = expectStep(step, t.step)
	}
	if err != nil {
		return Decision{}, t.abort("recv grant", err)
	}
	return dec, nil
}

// Report sends this shard's per-domain schedule digests and an opaque
// application payload (e.g. a telemetry snapshot) to the coordinator,
// then waits for the BYE acknowledging the run.
func (t *SockWorker) Report(digests []uint64, payload []byte) error {
	b := appendReport(t.conn.wbuf[:0], digests, payload)
	t.conn.wbuf = b
	if err := t.conn.write(t.timeout, b); err != nil {
		return &TransportError{Shard: 0, Op: "send report", Err: err}
	}
	typ, _, err := t.conn.read(t.timeout)
	if err == nil && typ != frameBye {
		err = fmt.Errorf("unexpected frame type %d", typ)
	}
	if err != nil {
		return &TransportError{Shard: 0, Op: "recv bye", Err: err}
	}
	return nil
}

// ShardReport is one worker's end-of-run report gathered by the
// coordinator.
type ShardReport struct {
	Shard   int
	Digests []uint64
	Payload []byte
}

// SockCoordinator is the DomainTransport for shard 0. It is also the
// relay hub: workers never talk to each other, so each superstep is one
// inbound and one outbound frame batch per worker.
type SockCoordinator struct {
	shards  int
	timeout time.Duration
	peers   []*shardConn // index by shard id; [0] is nil
	step    uint64
	outbox  [][]WireMsg
	scratch []WireMsg
}

// AcceptWorkers accepts shards-1 worker connections on ln, validates
// each HELLO (protocol version, unique claimed shard in
// [1, shards-1]), and replies with WELCOME frames carrying payload.
// timeout <= 0 selects DefaultWireTimeout; it bounds the whole
// handshake as well as every later superstep operation.
func AcceptWorkers(ln net.Listener, shards int, payload []byte, timeout time.Duration) (*SockCoordinator, error) {
	if shards < 2 {
		return nil, errors.New("sim: AcceptWorkers needs at least 2 shards")
	}
	if timeout <= 0 {
		timeout = DefaultWireTimeout
	}
	t := &SockCoordinator{shards: shards, timeout: timeout,
		peers:  make([]*shardConn, shards),
		outbox: make([][]WireMsg, shards)}
	type deadliner interface{ SetDeadline(time.Time) error }
	if dl, ok := ln.(deadliner); ok {
		_ = dl.SetDeadline(time.Now().Add(timeout))
	}
	for n := 1; n < shards; n++ {
		c, err := ln.Accept()
		if err != nil {
			t.Close()
			return nil, &TransportError{Shard: -1, Op: "accept", Err: err}
		}
		if err := t.admit(newShardConn(c), payload); err != nil {
			t.Close()
			return nil, err
		}
	}
	return t, nil
}

// AttachCoordinator builds a coordinator transport over pre-established
// connections (tests use in-process pipes): conns[i] must be the
// connection to shard i+1.
func AttachCoordinator(conns []net.Conn, payload []byte, timeout time.Duration) (*SockCoordinator, error) {
	if timeout <= 0 {
		timeout = DefaultWireTimeout
	}
	shards := len(conns) + 1
	if shards < 2 {
		return nil, errors.New("sim: AttachCoordinator needs at least 1 worker")
	}
	t := &SockCoordinator{shards: shards, timeout: timeout,
		peers:  make([]*shardConn, shards),
		outbox: make([][]WireMsg, shards)}
	for _, c := range conns {
		if err := t.admit(newShardConn(c), payload); err != nil {
			t.Close()
			return nil, err
		}
	}
	return t, nil
}

// admit runs the coordinator side of one worker handshake.
func (t *SockCoordinator) admit(sc *shardConn, payload []byte) error {
	typ, p, err := sc.read(t.timeout)
	if err == nil && typ != frameHello {
		err = fmt.Errorf("unexpected frame type %d", typ)
	}
	if err != nil {
		sc.close()
		return &TransportError{Shard: -1, Op: "hello", Err: err}
	}
	proto, shard, err := decodeHello(p)
	if err == nil && proto != wireProto {
		err = fmt.Errorf("protocol version %d, want %d", proto, wireProto)
	}
	if err == nil && (shard < 1 || int(shard) >= t.shards) {
		err = fmt.Errorf("claimed shard %d out of range [1,%d]", shard, t.shards-1)
	}
	if err == nil && t.peers[shard] != nil {
		err = fmt.Errorf("shard %d already connected", shard)
	}
	if err != nil {
		_ = sc.write(t.timeout, appendFail(nil, err.Error()))
		sc.close()
		return &TransportError{Shard: int(shard), Op: "hello", Err: err}
	}
	if err := sc.write(t.timeout, appendWelcome(nil, int32(t.shards), shard, payload)); err != nil {
		sc.close()
		return &TransportError{Shard: int(shard), Op: "welcome", Err: err}
	}
	t.peers[shard] = sc
	return nil
}

// Close tears down every worker connection.
func (t *SockCoordinator) Close() {
	for _, sc := range t.peers {
		sc.close()
	}
}

// abort broadcasts a best-effort FAIL to every worker (so they fail
// fast instead of waiting out their deadlines) and returns the typed
// error.
func (t *SockCoordinator) abort(shard int, op string, err error) error {
	msg := appendFail(nil, err.Error())
	for s, sc := range t.peers {
		if sc != nil && s != shard {
			_ = sc.write(t.timeout, msg)
		}
	}
	return &TransportError{Shard: shard, Op: op, Err: err}
}

// route delivers one in-transit message to its owner: locally via
// injectWire for shard 0, or into the outbox staged for the owning
// worker.
func (t *SockCoordinator) route(x *Executor, m WireMsg) error {
	owner := OwnerShard(m.DstDom, t.shards)
	if owner == 0 {
		return x.injectWire(m)
	}
	t.outbox[owner] = append(t.outbox[owner], m)
	return nil
}

// Exchange implements DomainTransport for the hub: collect local
// cross-shard messages, read every worker's TRAINS, route everything by
// owner, and write each worker its batch.
func (t *SockCoordinator) Exchange(x *Executor) error {
	t.step++
	for s := range t.outbox {
		t.outbox[s] = t.outbox[s][:0]
	}
	local, err := x.collectRemote(t.scratch[:0])
	t.scratch = local[:0]
	if err != nil {
		return t.abort(0, "collect", err)
	}
	for i := range local {
		if err := t.route(x, local[i]); err != nil {
			return t.abort(0, "route", err)
		}
	}
	for s := 1; s < t.shards; s++ {
		sc := t.peers[s]
		typ, p, err := sc.read(t.timeout)
		if err == nil && typ != frameTrains {
			err = fmt.Errorf("unexpected frame type %d", typ)
		}
		if err != nil {
			return t.abort(s, "recv trains", err)
		}
		step, msgs, err := decodeTrains(p)
		if err == nil {
			err = expectStep(step, t.step)
		}
		if err != nil {
			return t.abort(s, "recv trains", err)
		}
		for i := range msgs {
			if err := t.route(x, msgs[i]); err != nil {
				return t.abort(s, "route", err)
			}
		}
		typ, p, err = sc.read(t.timeout)
		if err == nil && typ != frameMark {
			err = fmt.Errorf("unexpected frame type %d", typ)
		}
		if err == nil {
			var step uint64
			if step, err = decodeMark(p); err == nil {
				err = expectStep(step, t.step)
			}
		}
		if err != nil {
			return t.abort(s, "recv mark", err)
		}
	}
	for s := 1; s < t.shards; s++ {
		sc := t.peers[s]
		b := appendTrains(sc.wbuf[:0], t.step, t.outbox[s])
		b = appendMark(b, t.step)
		sc.wbuf = b
		if err := sc.write(t.timeout, b); err != nil {
			return t.abort(s, "send trains", err)
		}
	}
	return nil
}

// Agree implements DomainTransport for the hub: fold every worker's
// vote into the global decision and grant it back. The fallback
// decision needs the epoch deltas from all shards (progress anywhere
// means no fallback); the EpochRan flags must agree — the loop branches
// are a pure function of replicated state, so a mismatch means a peer
// desynchronized.
func (t *SockCoordinator) Agree(x *Executor, v Vote) (Decision, error) {
	best := v.Key
	sum := v.Delta
	epochRan := v.EpochRan
	for s := 1; s < t.shards; s++ {
		sc := t.peers[s]
		typ, p, err := sc.read(t.timeout)
		if err == nil && typ != frameVote {
			err = fmt.Errorf("unexpected frame type %d", typ)
		}
		if err != nil {
			return Decision{}, t.abort(s, "recv vote", err)
		}
		step, vs, err := decodeVote(p)
		if err == nil {
			err = expectStep(step, t.step)
		}
		if err == nil && vs.EpochRan != epochRan {
			err = fmt.Errorf("epoch phase desync: shard %d ran=%v, coordinator ran=%v",
				s, vs.EpochRan, epochRan)
		}
		if err != nil {
			return Decision{}, t.abort(s, "recv vote", err)
		}
		sum += vs.Delta
		if keyLess(vs.Key, best) {
			best = vs.Key
		}
	}
	dec := Decision{NodeNext: best.At, Fallback: epochRan && sum == 0, FallbackKey: best}
	for s := 1; s < t.shards; s++ {
		sc := t.peers[s]
		b := appendGrant(sc.wbuf[:0], t.step, dec)
		sc.wbuf = b
		if err := sc.write(t.timeout, b); err != nil {
			return Decision{}, t.abort(s, "send grant", err)
		}
	}
	return dec, nil
}

// Gather collects every worker's end-of-run report and releases the
// workers with BYE frames. Reports are indexed by shard id (entry 0 is
// absent — the coordinator's own state needs no report).
func (t *SockCoordinator) Gather() ([]ShardReport, error) {
	reports := make([]ShardReport, 0, t.shards-1)
	for s := 1; s < t.shards; s++ {
		sc := t.peers[s]
		typ, p, err := sc.read(t.timeout)
		if err == nil && typ != frameReport {
			err = fmt.Errorf("unexpected frame type %d", typ)
		}
		if err != nil {
			return nil, t.abort(s, "recv report", err)
		}
		digests, payload, err := decodeReport(p)
		if err != nil {
			return nil, t.abort(s, "recv report", err)
		}
		reports = append(reports, ShardReport{Shard: s, Digests: digests,
			Payload: append([]byte(nil), payload...)})
	}
	for s := 1; s < t.shards; s++ {
		if err := t.peers[s].write(t.timeout, appendBye(nil)); err != nil {
			return nil, &TransportError{Shard: s, Op: "send bye", Err: err}
		}
	}
	return reports, nil
}
