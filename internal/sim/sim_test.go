package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestLoopOrdering(t *testing.T) {
	l := NewLoop(1)
	var got []int
	l.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	l.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	l.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	l.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if l.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", l.Now())
	}
}

func TestLoopSameTimeFIFO(t *testing.T) {
	l := NewLoop(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	l.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestLoopNestedScheduling(t *testing.T) {
	l := NewLoop(1)
	var fired []time.Duration
	l.Schedule(time.Second, func() {
		fired = append(fired, l.Now())
		l.Schedule(time.Second, func() {
			fired = append(fired, l.Now())
		})
	})
	l.RunAll()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Fatalf("fired = %v", fired)
	}
}

func TestTimerStop(t *testing.T) {
	l := NewLoop(1)
	ran := false
	tm := l.Schedule(time.Second, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	l.RunAll()
	if ran {
		t.Fatal("cancelled timer fired")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	l := NewLoop(1)
	var count int
	var tick func()
	tick = func() {
		count++
		l.Schedule(time.Second, tick)
	}
	l.Schedule(time.Second, tick)
	l.Run(10 * time.Second)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if l.Now() != 10*time.Second {
		t.Fatalf("Now = %v, want 10s", l.Now())
	}
	// Continuing runs the next batch.
	l.Run(15 * time.Second)
	if count != 15 {
		t.Fatalf("count = %d, want 15", count)
	}
}

func TestRunAdvancesToHorizonWhenIdle(t *testing.T) {
	l := NewLoop(1)
	l.Run(5 * time.Second)
	if l.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", l.Now())
	}
}

func TestLoopStop(t *testing.T) {
	l := NewLoop(1)
	count := 0
	for i := 1; i <= 5; i++ {
		l.Schedule(time.Duration(i)*time.Second, func() {
			count++
			if count == 2 {
				l.Stop()
			}
		})
	}
	l.RunAll()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestScheduleNegativeDelay(t *testing.T) {
	l := NewLoop(1)
	l.Run(time.Second)
	ran := false
	l.Schedule(-time.Hour, func() { ran = true })
	l.Step()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
	if l.Now() != time.Second {
		t.Fatalf("time went backwards: %v", l.Now())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds look identical (%d collisions)", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		m := int(n%100) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(7)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(3.0)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.05 {
		t.Fatalf("Exp mean = %v, want ~3.0", mean)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(9)
	var sum, ss float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		ss += v * v
	}
	mean := sum / n
	std := math.Sqrt(ss/n - mean*mean)
	if math.Abs(mean-10) > 0.05 || math.Abs(std-2) > 0.05 {
		t.Fatalf("Normal mean/std = %v/%v, want 10/2", mean, std)
	}
}

func TestRNGParetoBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Pareto(1.2, 1, 100)
			if v < 1 || v > 100+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(5)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams identical")
	}
}

func TestStatsBasics(t *testing.T) {
	var s Stats
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("basic stats wrong: %+v mean=%v", s, s.Mean())
	}
	if math.Abs(s.Stddev()-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("stddev = %v", s.Stddev())
	}
	if math.Abs(s.Mdev()-1.2) > 1e-12 {
		t.Fatalf("mdev = %v", s.Mdev())
	}
}

func TestStatsPercentile(t *testing.T) {
	var s Stats
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if p := s.Percentile(50); p != 50 {
		t.Fatalf("p50 = %v", p)
	}
	if p := s.Percentile(99); p != 99 {
		t.Fatalf("p99 = %v", p)
	}
	if p := s.Percentile(100); p != 100 {
		t.Fatalf("p100 = %v", p)
	}
}

func TestStatsEmpty(t *testing.T) {
	var s Stats
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Stddev() != 0 || s.Mdev() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty stats should be all-zero")
	}
}

func TestStatsAddDuration(t *testing.T) {
	var s Stats
	s.AddDuration(1500 * time.Microsecond)
	if s.Mean() != 1.5 {
		t.Fatalf("AddDuration mean = %v, want 1.5 ms", s.Mean())
	}
}

func TestRealClock(t *testing.T) {
	c := NewRealClock()
	done := make(chan struct{})
	c.Schedule(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("real timer never fired")
	}
	if c.Now() <= 0 {
		t.Fatal("RealClock.Now not advancing")
	}
	tm := c.Schedule(time.Hour, func() {})
	if !tm.Stop() {
		t.Fatal("could not stop real timer")
	}
}
