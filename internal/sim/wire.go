package sim

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Wire protocol for the socket transport: length-prefixed binary
// frames, fixed little-endian integer widths, no varints — the encoding
// of a value is canonical, so encode(decode(frame)) is byte-identical
// to the frame, which the fuzz round-trip pins.
//
//	frame  := u32 length | u8 type | payload
//	length := len(type byte + payload)
//
// Frame types (payload layouts in the encode/decode pairs below):
//
//	HELLO   worker -> coordinator: protocol version, claimed shard id.
//	WELCOME coordinator -> worker: shard count, confirmed shard id, and
//	        an opaque application payload (the scenario/spec the worker
//	        must replicate).
//	TRAINS  both directions, once per superstep: the cross-shard typed
//	        messages collected at this exchange barrier.
//	MARK    end-of-exchange marker carrying the superstep counter; a
//	        mismatch means the peers desynchronized.
//	VOTE    worker -> coordinator: local minimum pending merge key plus
//	        the previous epoch's progress delta.
//	GRANT   coordinator -> worker: the agreed Decision.
//	REPORT  worker -> coordinator: per-domain schedule digests plus an
//	        opaque application payload (telemetry snapshot).
//	BYE     coordinator -> worker: clean shutdown.
//	FAIL    either direction: the sender is aborting; payload is the
//	        reason, surfaced in the peer's TransportError.
const (
	frameHello byte = iota + 1
	frameWelcome
	frameTrains
	frameMark
	frameVote
	frameGrant
	frameReport
	frameBye
	frameFail
)

// wireProto is the protocol version carried in HELLO; peers with
// different versions refuse to pair.
const wireProto uint32 = 1

// maxWireFrame bounds a frame's length prefix (64 MiB): a corrupt or
// hostile length cannot make the reader allocate unbounded memory.
const maxWireFrame = 1 << 26

var (
	errWireShort    = errors.New("sim: wire frame truncated")
	errWireTrailing = errors.New("sim: wire frame has trailing bytes")
	errWireHuge     = errors.New("sim: wire frame exceeds size limit")
)

// wireCursor is a bounds-checked little-endian reader over one frame
// payload. All reads after the first failure return zero values; the
// caller checks err once at the end. Decoding never panics on malformed
// input — the property the fuzz target pins.
type wireCursor struct {
	b   []byte
	err error
}

func (c *wireCursor) fail() {
	if c.err == nil {
		c.err = errWireShort
	}
}

func (c *wireCursor) u8() byte {
	if c.err != nil || len(c.b) < 1 {
		c.fail()
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *wireCursor) u32() uint32 {
	if c.err != nil || len(c.b) < 4 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v
}

func (c *wireCursor) u64() uint64 {
	if c.err != nil || len(c.b) < 8 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v
}

// bytes returns the next length-prefixed byte string (aliasing the
// frame buffer, valid until the next frame is read into it).
func (c *wireCursor) bytes() []byte {
	n := c.u32()
	if c.err != nil || uint64(n) > uint64(len(c.b)) {
		c.fail()
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

// done rejects trailing bytes, keeping the encoding canonical.
func (c *wireCursor) done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return errWireTrailing
	}
	return nil
}

// appendFrameHeader reserves the length prefix and writes the type
// byte; finishFrame backfills the length once the payload is appended.
func appendFrameHeader(dst []byte, typ byte) ([]byte, int) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, typ)
	return dst, start
}

func finishFrame(dst []byte, start int) []byte {
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// splitFrame splits one frame off the front of b, returning its type,
// payload, and the remaining bytes. Pure function over bytes (the fuzz
// entry point); the socket path uses readFrame instead.
func splitFrame(b []byte) (typ byte, payload, rest []byte, err error) {
	if len(b) < 4 {
		return 0, nil, b, errWireShort
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxWireFrame {
		return 0, nil, b, errWireHuge
	}
	if n < 1 || uint64(len(b)-4) < uint64(n) {
		return 0, nil, b, errWireShort
	}
	body := b[4 : 4+n]
	return body[0], body[1:], b[4+n:], nil
}

// readFrame reads one frame from r into buf (grown as needed),
// returning the type, the payload (aliasing buf), and the possibly
// regrown buffer.
func readFrame(r *bufio.Reader, buf []byte) (typ byte, payload, nbuf []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxWireFrame {
		return 0, nil, buf, errWireHuge
	}
	if n < 1 {
		return 0, nil, buf, errWireShort
	}
	if uint64(cap(buf)) < uint64(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, buf, err
	}
	return buf[0], buf[1:], buf, nil
}

func appendHello(dst []byte, shard int32) []byte {
	dst, start := appendFrameHeader(dst, frameHello)
	dst = binary.LittleEndian.AppendUint32(dst, wireProto)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(shard))
	return finishFrame(dst, start)
}

func decodeHello(p []byte) (proto uint32, shard int32, err error) {
	c := wireCursor{b: p}
	proto = c.u32()
	shard = int32(c.u32())
	return proto, shard, c.done()
}

func appendWelcome(dst []byte, shards, shard int32, payload []byte) []byte {
	dst, start := appendFrameHeader(dst, frameWelcome)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(shards))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(shard))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return finishFrame(dst, start)
}

func decodeWelcome(p []byte) (shards, shard int32, payload []byte, err error) {
	c := wireCursor{b: p}
	shards = int32(c.u32())
	shard = int32(c.u32())
	payload = c.bytes()
	return shards, shard, payload, c.done()
}

func appendTrains(dst []byte, step uint64, msgs []WireMsg) []byte {
	dst, start := appendFrameHeader(dst, frameTrains)
	dst = binary.LittleEndian.AppendUint64(dst, step)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(msgs)))
	for i := range msgs {
		m := &msgs[i]
		dst = binary.LittleEndian.AppendUint32(dst, uint32(m.DstDom))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(m.At))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Dom))
		dst = binary.LittleEndian.AppendUint64(dst, m.Seq)
		dst = binary.LittleEndian.AppendUint32(dst, m.HID)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Arg)))
		dst = append(dst, m.Arg...)
	}
	return finishFrame(dst, start)
}

func decodeTrains(p []byte) (step uint64, msgs []WireMsg, err error) {
	c := wireCursor{b: p}
	step = c.u64()
	n := c.u32()
	// Each message costs at least 28 payload bytes; reject counts the
	// payload cannot hold before allocating.
	if c.err == nil && uint64(n)*28 > uint64(len(c.b)) {
		return step, nil, errWireShort
	}
	if n > 0 && c.err == nil {
		msgs = make([]WireMsg, 0, n)
	}
	for i := uint32(0); i < n && c.err == nil; i++ {
		var m WireMsg
		m.DstDom = int32(c.u32())
		m.At = time.Duration(c.u64())
		m.Dom = int32(c.u32())
		m.Seq = c.u64()
		m.HID = c.u32()
		m.Arg = c.bytes()
		msgs = append(msgs, m)
	}
	return step, msgs, c.done()
}

func appendMark(dst []byte, step uint64) []byte {
	dst, start := appendFrameHeader(dst, frameMark)
	dst = binary.LittleEndian.AppendUint64(dst, step)
	return finishFrame(dst, start)
}

func decodeMark(p []byte) (step uint64, err error) {
	c := wireCursor{b: p}
	step = c.u64()
	return step, c.done()
}

func appendVote(dst []byte, step uint64, v Vote) []byte {
	dst, start := appendFrameHeader(dst, frameVote)
	dst = binary.LittleEndian.AppendUint64(dst, step)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Key.At))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(v.Key.Dom))
	dst = binary.LittleEndian.AppendUint64(dst, v.Key.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, v.Delta)
	if v.EpochRan {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return finishFrame(dst, start)
}

func decodeVote(p []byte) (step uint64, v Vote, err error) {
	c := wireCursor{b: p}
	step = c.u64()
	v.Key.At = time.Duration(c.u64())
	v.Key.Dom = int32(c.u32())
	v.Key.Seq = c.u64()
	v.Delta = c.u64()
	v.EpochRan = c.u8() != 0
	return step, v, c.done()
}

func appendGrant(dst []byte, step uint64, d Decision) []byte {
	dst, start := appendFrameHeader(dst, frameGrant)
	dst = binary.LittleEndian.AppendUint64(dst, step)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(d.NodeNext))
	if d.Fallback {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(d.FallbackKey.At))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(d.FallbackKey.Dom))
	dst = binary.LittleEndian.AppendUint64(dst, d.FallbackKey.Seq)
	return finishFrame(dst, start)
}

func decodeGrant(p []byte) (step uint64, d Decision, err error) {
	c := wireCursor{b: p}
	step = c.u64()
	d.NodeNext = time.Duration(c.u64())
	d.Fallback = c.u8() != 0
	d.FallbackKey.At = time.Duration(c.u64())
	d.FallbackKey.Dom = int32(c.u32())
	d.FallbackKey.Seq = c.u64()
	return step, d, c.done()
}

func appendReport(dst []byte, digests []uint64, payload []byte) []byte {
	dst, start := appendFrameHeader(dst, frameReport)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(digests)))
	for _, d := range digests {
		dst = binary.LittleEndian.AppendUint64(dst, d)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return finishFrame(dst, start)
}

func decodeReport(p []byte) (digests []uint64, payload []byte, err error) {
	c := wireCursor{b: p}
	n := c.u32()
	if c.err == nil && uint64(n)*8 > uint64(len(c.b)) {
		return nil, nil, errWireShort
	}
	if n > 0 && c.err == nil {
		digests = make([]uint64, 0, n)
	}
	for i := uint32(0); i < n && c.err == nil; i++ {
		digests = append(digests, c.u64())
	}
	payload = c.bytes()
	return digests, payload, c.done()
}

func appendBye(dst []byte) []byte {
	dst, start := appendFrameHeader(dst, frameBye)
	return finishFrame(dst, start)
}

func appendFail(dst []byte, msg string) []byte {
	dst, start := appendFrameHeader(dst, frameFail)
	dst = append(dst, msg...)
	return finishFrame(dst, start)
}

func decodeFail(p []byte) string { return string(p) }

// decodeAnyFrame dispatches a frame to its payload decoder, discarding
// the result. It exists for the fuzz target: every decoder must survive
// arbitrary bytes without panicking.
func decodeAnyFrame(typ byte, payload []byte) error {
	switch typ {
	case frameHello:
		_, _, err := decodeHello(payload)
		return err
	case frameWelcome:
		_, _, _, err := decodeWelcome(payload)
		return err
	case frameTrains:
		_, _, err := decodeTrains(payload)
		return err
	case frameMark:
		_, err := decodeMark(payload)
		return err
	case frameVote:
		_, _, err := decodeVote(payload)
		return err
	case frameGrant:
		_, _, err := decodeGrant(payload)
		return err
	case frameReport:
		_, _, err := decodeReport(payload)
		return err
	case frameBye:
		if len(payload) != 0 {
			return errWireTrailing
		}
		return nil
	case frameFail:
		return nil
	default:
		return fmt.Errorf("sim: unknown wire frame type %d", typ)
	}
}
