package sim

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

func TestWireFrameRoundTrips(t *testing.T) {
	t.Run("hello", func(t *testing.T) {
		b := appendHello(nil, 3)
		typ, p, rest, err := splitFrame(b)
		if err != nil || typ != frameHello || len(rest) != 0 {
			t.Fatalf("splitFrame: typ=%d rest=%d err=%v", typ, len(rest), err)
		}
		proto, shard, err := decodeHello(p)
		if err != nil || proto != wireProto || shard != 3 {
			t.Fatalf("decodeHello: proto=%d shard=%d err=%v", proto, shard, err)
		}
	})

	t.Run("welcome", func(t *testing.T) {
		b := appendWelcome(nil, 4, 2, []byte("scenario"))
		_, p, _, err := splitFrame(b)
		if err != nil {
			t.Fatal(err)
		}
		shards, shard, payload, err := decodeWelcome(p)
		if err != nil || shards != 4 || shard != 2 || string(payload) != "scenario" {
			t.Fatalf("decodeWelcome: %d %d %q %v", shards, shard, payload, err)
		}
	})

	t.Run("trains", func(t *testing.T) {
		msgs := []WireMsg{
			{DstDom: 5, At: 123 * time.Millisecond, Dom: 2, Seq: 99, HID: 7, Arg: []byte{1, 2, 3}},
			{DstDom: 1, At: time.Second, Dom: 9, Seq: 1 << 40, HID: 0, Arg: nil},
		}
		b := appendTrains(nil, 42, msgs)
		_, p, _, err := splitFrame(b)
		if err != nil {
			t.Fatal(err)
		}
		step, got, err := decodeTrains(p)
		if err != nil || step != 42 || len(got) != 2 {
			t.Fatalf("decodeTrains: step=%d n=%d err=%v", step, len(got), err)
		}
		for i := range msgs {
			if got[i].DstDom != msgs[i].DstDom || got[i].At != msgs[i].At ||
				got[i].Dom != msgs[i].Dom || got[i].Seq != msgs[i].Seq ||
				got[i].HID != msgs[i].HID || !bytes.Equal(got[i].Arg, msgs[i].Arg) {
				t.Fatalf("msg %d mismatch: %+v vs %+v", i, got[i], msgs[i])
			}
		}
		if b2 := appendTrains(nil, step, got); !bytes.Equal(b, b2) {
			t.Fatal("re-encode not byte-identical")
		}
	})

	t.Run("vote-grant", func(t *testing.T) {
		v := Vote{Key: EventKey{At: 7 * time.Millisecond, Dom: 3, Seq: 11}, Delta: 5, EpochRan: true}
		b := appendVote(nil, 9, v)
		_, p, _, err := splitFrame(b)
		if err != nil {
			t.Fatal(err)
		}
		step, gv, err := decodeVote(p)
		if err != nil || step != 9 || gv != v {
			t.Fatalf("decodeVote: %d %+v %v", step, gv, err)
		}
		d := Decision{NodeNext: time.Second, Fallback: true,
			FallbackKey: EventKey{At: time.Second, Dom: 1, Seq: 2}}
		b = appendGrant(nil, 9, d)
		_, p, _, err = splitFrame(b)
		if err != nil {
			t.Fatal(err)
		}
		step, gd, err := decodeGrant(p)
		if err != nil || step != 9 || gd != d {
			t.Fatalf("decodeGrant: %d %+v %v", step, gd, err)
		}
	})

	t.Run("report", func(t *testing.T) {
		b := appendReport(nil, []uint64{1, 2, 3}, []byte("tel"))
		_, p, _, err := splitFrame(b)
		if err != nil {
			t.Fatal(err)
		}
		digests, payload, err := decodeReport(p)
		if err != nil || len(digests) != 3 || digests[2] != 3 || string(payload) != "tel" {
			t.Fatalf("decodeReport: %v %q %v", digests, payload, err)
		}
	})

	t.Run("bye-fail", func(t *testing.T) {
		typ, p, _, err := splitFrame(appendBye(nil))
		if err != nil || typ != frameBye || len(p) != 0 {
			t.Fatalf("bye: %d %d %v", typ, len(p), err)
		}
		typ, p, _, err = splitFrame(appendFail(nil, "boom"))
		if err != nil || typ != frameFail || decodeFail(p) != "boom" {
			t.Fatalf("fail: %d %q %v", typ, p, err)
		}
	})
}

func TestWireDecodeRejectsMalformed(t *testing.T) {
	// Truncated header.
	if _, _, _, err := splitFrame([]byte{1, 0}); err == nil {
		t.Fatal("short header accepted")
	}
	// Length beyond the buffer.
	if _, _, _, err := splitFrame([]byte{200, 0, 0, 0, frameMark}); err == nil {
		t.Fatal("overlong frame accepted")
	}
	// Oversized length prefix.
	huge := binary.LittleEndian.AppendUint32(nil, maxWireFrame+1)
	if _, _, _, err := splitFrame(append(huge, frameMark)); err == nil {
		t.Fatal("huge frame accepted")
	}
	// Trailing bytes in a fixed-size payload.
	b := appendMark(nil, 7)
	b = append(b, 0xff)
	binary.LittleEndian.PutUint32(b, uint32(len(b)-4))
	_, p, _, err := splitFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeMark(p); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Train count larger than the payload can hold must not allocate or
	// crash.
	tb := binary.LittleEndian.AppendUint64(nil, 1)                 // step
	tb = binary.LittleEndian.AppendUint32(tb, 0xffffffff)          // count
	if _, _, err := decodeTrains(tb); err == nil {
		t.Fatal("absurd train count accepted")
	}
}

// FuzzWireCodec pins the two wire-codec properties the distributed
// protocol depends on: decoding arbitrary bytes never panics, and
// encode(decode(encode(x))) is byte-identical to encode(x) for every
// frame type (the encoding is canonical).
func FuzzWireCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendHello(nil, 1))
	f.Add(appendWelcome(nil, 3, 1, []byte("spec")))
	f.Add(appendTrains(nil, 2, []WireMsg{{DstDom: 1, At: time.Millisecond, Dom: 2, Seq: 3, HID: 0, Arg: []byte{9}}}))
	f.Add(appendMark(nil, 5))
	f.Add(appendVote(nil, 5, Vote{Key: EventKey{At: 1, Dom: 2, Seq: 3}, Delta: 4, EpochRan: true}))
	f.Add(appendGrant(nil, 5, Decision{NodeNext: 9, Fallback: true, FallbackKey: EventKey{At: 9, Dom: 1, Seq: 1}}))
	f.Add(appendReport(nil, []uint64{1, 2}, []byte("t")))
	f.Add(appendBye(nil))
	f.Add(appendFail(nil, "x"))
	f.Add([]byte{3, 0, 0, 0, frameTrains, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		// Property 1: framing and every payload decoder survive
		// arbitrary input.
		rest := b
		for len(rest) > 0 {
			typ, payload, r, err := splitFrame(rest)
			if err != nil {
				break
			}
			_ = decodeAnyFrame(typ, payload)
			rest = r
		}

		// Property 2: canonical round-trip for structured frames derived
		// from the fuzz input.
		var msgs []WireMsg
		for i := 0; i+8 <= len(b) && len(msgs) < 16; i += 8 {
			argN := int(b[i]) % 9
			end := i + 8 + argN
			if end > len(b) {
				end = len(b)
			}
			msgs = append(msgs, WireMsg{
				DstDom: int32(b[i+1]),
				At:     time.Duration(binary.LittleEndian.Uint32(b[i : i+4])),
				Dom:    int32(b[i+5]),
				Seq:    binary.LittleEndian.Uint64(b[i : i+8]),
				HID:    uint32(b[i+6]),
				Arg:    b[i+8 : end],
			})
		}
		var step uint64 = 77
		if len(b) >= 8 {
			step = binary.LittleEndian.Uint64(b)
		}
		enc := appendTrains(nil, step, msgs)
		typ, payload, rest, err := splitFrame(enc)
		if err != nil || typ != frameTrains || len(rest) != 0 {
			t.Fatalf("self-encoded trains frame did not split: typ=%d err=%v", typ, err)
		}
		step2, msgs2, err := decodeTrains(payload)
		if err != nil || step2 != step || len(msgs2) != len(msgs) {
			t.Fatalf("self-encoded trains frame did not decode: %v", err)
		}
		if enc2 := appendTrains(nil, step2, msgs2); !bytes.Equal(enc, enc2) {
			t.Fatal("trains re-encode not byte-identical")
		}

		v := Vote{Key: EventKey{At: time.Duration(step), Dom: int32(step >> 32), Seq: step ^ 0xabc},
			Delta: step % 1000, EpochRan: step%2 == 0}
		ev := appendVote(nil, step, v)
		_, payload, _, err = splitFrame(ev)
		if err != nil {
			t.Fatalf("vote split: %v", err)
		}
		_, v2, err := decodeVote(payload)
		if err != nil || v2 != v {
			t.Fatalf("vote decode: %+v %v", v2, err)
		}
		if ev2 := appendVote(nil, step, v2); !bytes.Equal(ev, ev2) {
			t.Fatal("vote re-encode not byte-identical")
		}
	})
}
