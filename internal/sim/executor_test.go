package sim

import (
	"fmt"
	"testing"
	"time"
)

// workload drives a small ring of domains exchanging cross-domain
// messages plus local periodic work, and returns the executor's
// schedule digest and each domain's fire trace. The trace is recorded
// per domain (each domain appends only to its own slice; rounds are
// ordered by the executor's channels), so it is comparable across
// worker counts even though global interleaving differs.
func workload(t *testing.T, workers int) (uint64, [][]string) {
	t.Helper()
	const n = 4
	const look = 2 * time.Millisecond
	x := NewExecutor(42, workers)
	defer x.Shutdown()
	doms := make([]*Domain, n)
	traces := make([][]string, n)
	for i := range doms {
		doms[i] = x.NewDomain(fmt.Sprintf("n%d", i))
		doms[i].ObserveInboundLatency(look)
	}
	for i := range doms {
		i := i
		d := doms[i]
		next := doms[(i+1)%n]
		var tick func()
		count := 0
		tick = func() {
			count++
			if count > 50 {
				return
			}
			// Local RNG draw: per-domain streams must replay identically.
			jitter := time.Duration(d.RNG().Intn(100)) * time.Microsecond
			from := d.Now()
			d.SendTo(next, look+jitter, func() {
				at := next.Now()
				if at < from+look {
					t.Errorf("causality: message sent at %v (+%v) ran at %v", from, look, at)
				}
				traces[(i+1)%n] = append(traces[(i+1)%n],
					fmt.Sprintf("recv@%v from n%d", at, i))
			})
			d.Schedule(time.Millisecond, tick)
		}
		d.Schedule(0, tick)
	}
	x.Run(200 * time.Millisecond)
	return x.ScheduleDigest(), traces
}

// TestExecutorWorkerParity: the same workload must produce byte-identical
// schedule digests and per-domain traces for 1 and 4 workers.
func TestExecutorWorkerParity(t *testing.T) {
	d1, t1 := workload(t, 1)
	d4, t4 := workload(t, 4)
	if d1 != d4 {
		t.Fatalf("schedule digest diverged: 1 worker %016x, 4 workers %016x", d1, d4)
	}
	for i := range t1 {
		if len(t1[i]) != len(t4[i]) {
			t.Fatalf("domain %d trace length: %d vs %d", i, len(t1[i]), len(t4[i]))
		}
		for j := range t1[i] {
			if t1[i][j] != t4[i][j] {
				t.Fatalf("domain %d trace[%d]: %q vs %q", i, j, t1[i][j], t4[i][j])
			}
		}
	}
	if d1 == fnvOffset {
		t.Fatal("digest never folded any events")
	}
}

// TestExecutorRunAdvancesClocks: after Run(until), every domain clock
// sits at until, like the classic Loop.Run contract.
func TestExecutorRunAdvancesClocks(t *testing.T) {
	x := NewExecutor(1, 2)
	defer x.Shutdown()
	a := x.NewDomain("a")
	b := x.NewDomain("b")
	a.ObserveInboundLatency(time.Millisecond)
	b.ObserveInboundLatency(time.Millisecond)
	a.Schedule(3*time.Millisecond, func() {})
	x.Run(10 * time.Millisecond)
	for _, d := range x.Domains() {
		if d.Now() != 10*time.Millisecond {
			t.Fatalf("domain %s clock %v, want 10ms", d.Label(), d.Now())
		}
	}
}

// TestCrossDomainTimerStop covers the lazy-cancellation protocol: a
// timer scheduled into another domain then stopped must not fire, must
// not double-recycle, and the freed event slot must be safely reusable.
func TestCrossDomainTimerStop(t *testing.T) {
	x := NewExecutor(7, 2)
	defer x.Shutdown()
	a := x.NewDomain("a")
	b := x.NewDomain("b")
	a.ObserveInboundLatency(time.Millisecond)
	b.ObserveInboundLatency(time.Millisecond)

	// Stop before the message is even delivered.
	fired := 0
	tm := a.SendTo(b, 5*time.Millisecond, func() { fired++ })
	if tm.IsZero() {
		t.Fatal("SendTo returned zero Timer")
	}
	if !tm.Stop() {
		t.Fatal("Stop before delivery reported not cancelled")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported cancelled again")
	}
	x.Run(10 * time.Millisecond)
	if fired != 0 {
		t.Fatalf("stopped-before-delivery timer fired %d times", fired)
	}
	bs := b.Stats()
	if bs.Delivered != 0 || bs.Cancelled != 1 {
		t.Fatalf("stats after undelivered stop: %+v", bs)
	}

	// Stop after delivery (the event sits in b's heap) but before fire.
	tm2 := a.SendTo(b, 20*time.Millisecond, func() { fired++ })
	x.Run(15 * time.Millisecond) // delivers the message, does not fire it
	if got := b.Stats().Delivered; got != 1 {
		t.Fatalf("message not delivered: Delivered=%d", got)
	}
	if !tm2.Stop() {
		t.Fatal("Stop after delivery reported not cancelled")
	}
	x.Run(30 * time.Millisecond)
	if fired != 0 {
		t.Fatalf("stopped-after-delivery timer fired %d times", fired)
	}
	bs = b.Stats()
	if bs.Fired != 0 || bs.Cancelled != 2 {
		t.Fatalf("stats after delivered stop: %+v", bs)
	}
	// Exactly one recycle for the one materialized event: no double
	// recycle from the Stop racing the lazy discard.
	if bs.Recycled != 1 {
		t.Fatalf("materialized event recycled %d times, want 1", bs.Recycled)
	}

	// The recycled slot is generation-bumped: reuse it for a local
	// timer and confirm the stale cross-domain handle stays inert while
	// the new timer works.
	ranLocal := false
	local := b.Schedule(time.Millisecond, func() { ranLocal = true })
	if tm2.Stop() {
		t.Fatal("stale cross-domain Stop cancelled something after recycle")
	}
	x.Run(40 * time.Millisecond)
	if !ranLocal {
		t.Fatal("local timer on recycled event slot never fired")
	}
	_ = local

	// Stop after fire is a no-op returning false.
	tm3 := a.SendTo(b, time.Millisecond, func() { fired++ })
	x.Run(45 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("live cross-domain timer fired %d times, want 1", fired)
	}
	if tm3.Stop() {
		t.Fatal("Stop after fire reported cancelled")
	}
}

// TestControlBarrierOrder: a control event and a node event at the same
// timestamp run control-first (merge key puts domain 0 ahead), and the
// control event observes node clocks advanced to its own time.
func TestControlBarrierOrder(t *testing.T) {
	x := NewExecutor(1, 2)
	defer x.Shutdown()
	a := x.NewDomain("a")
	b := x.NewDomain("b")
	a.ObserveInboundLatency(time.Millisecond)
	b.ObserveInboundLatency(time.Millisecond)
	loop := x.Loop()

	var order []string
	a.Schedule(10*time.Millisecond, func() { order = append(order, "node") })
	loop.Schedule(10*time.Millisecond, func() {
		order = append(order, "control")
		if b.Now() != 10*time.Millisecond {
			t.Errorf("control event at 10ms saw node clock %v", b.Now())
		}
		// Control events may schedule onto node domains directly; the
		// barrier guarantees no worker is running.
		a.Schedule(time.Millisecond, func() { order = append(order, "follow-up") })
	})
	x.Run(20 * time.Millisecond)
	want := []string{"control", "node", "follow-up"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestZeroLookaheadFallback: a zero-delay cross-domain edge disables
// horizons; the executor must fall back to sequential global-min
// execution and still complete the exchange deterministically.
func TestZeroLookaheadFallback(t *testing.T) {
	run := func(workers int) (int, uint64) {
		x := NewExecutor(3, workers)
		defer x.Shutdown()
		a := x.NewDomain("a")
		b := x.NewDomain("b")
		a.ObserveInboundLatency(0)
		b.ObserveInboundLatency(0)
		count := 0
		var ping, pong func()
		ping = func() {
			if count >= 100 {
				return
			}
			count++
			a.SendTo(b, 0, pong)
		}
		pong = func() { b.SendTo(a, 0, ping) }
		a.Schedule(0, ping)
		x.Run(time.Millisecond)
		if x.Fallbacks() == 0 {
			t.Error("zero-lookahead run never used the sequential fallback")
		}
		return count, x.ScheduleDigest()
	}
	c1, d1 := run(1)
	c4, d4 := run(4)
	if c1 != 100 || c4 != 100 {
		t.Fatalf("ping-pong count: %d and %d, want 100", c1, c4)
	}
	if d1 != d4 {
		t.Fatalf("fallback digests diverged: %016x vs %016x", d1, d4)
	}
}

// TestSingleDomainDigestStable: the schedule digest is also maintained
// on the classic single-domain path, and replays identically.
func TestSingleDomainDigestStable(t *testing.T) {
	run := func() uint64 {
		l := NewLoop(99)
		var tick func()
		n := 0
		tick = func() {
			if n++; n < 20 {
				l.Schedule(time.Duration(l.RNG().Intn(1000))*time.Microsecond, tick)
			}
		}
		l.Schedule(0, tick)
		l.RunAll()
		return l.Executor().ScheduleDigest()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("single-domain digest not reproducible: %016x vs %016x", a, b)
	}
}

// TestDomainStatsLedger: fired plus lazily-discarded events equals
// recycles per domain — every materialized event is recycled exactly
// once.
func TestDomainStatsLedger(t *testing.T) {
	_, _ = workload(t, 4)
	x := NewExecutor(42, 4)
	defer x.Shutdown()
	a := x.NewDomain("a")
	b := x.NewDomain("b")
	a.ObserveInboundLatency(time.Millisecond)
	b.ObserveInboundLatency(time.Millisecond)
	for i := 0; i < 10; i++ {
		tm := a.SendTo(b, time.Duration(i+1)*time.Millisecond, func() {})
		if i%2 == 0 {
			tm.Stop()
		}
		a.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	x.Run(50 * time.Millisecond)
	for _, d := range x.Domains() {
		s := d.Stats()
		if s.Recycled < s.Fired {
			t.Fatalf("domain %s: recycled %d < fired %d", s.Label, s.Recycled, s.Fired)
		}
		if s.Fired+s.Cancelled < s.Recycled {
			t.Fatalf("domain %s: fired %d + cancelled %d < recycled %d",
				s.Label, s.Fired, s.Cancelled, s.Recycled)
		}
	}
	bs := b.Stats()
	if bs.Fired != 5 {
		t.Fatalf("b fired %d cross-domain events, want 5", bs.Fired)
	}
	as := a.Stats()
	if as.Sent != 10 || as.Fired != 10 {
		t.Fatalf("a stats: %+v", as)
	}
}
