package sim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Stats accumulates scalar samples and reports the summary statistics the
// paper's tables use (mean, standard deviation, min/max, mdev as reported
// by ping, percentiles).
type Stats struct {
	samples []float64
	sum     float64
}

// Add records one sample.
func (s *Stats) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sum += v
}

// AddDuration records a duration sample in milliseconds, the unit used by
// the paper's ping/jitter tables.
func (s *Stats) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// N returns the number of samples.
func (s *Stats) N() int { return len(s.samples) }

// Mean returns the sample mean (0 when empty).
func (s *Stats) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Min returns the smallest sample (0 when empty).
func (s *Stats) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	m := s.samples[0]
	for _, v := range s.samples[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample (0 when empty).
func (s *Stats) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	m := s.samples[0]
	for _, v := range s.samples[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Stddev returns the population standard deviation.
func (s *Stats) Stddev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Mdev returns mean absolute deviation from the mean, matching the "mdev"
// column printed by ping (Tables 3 and 5 of the paper).
func (s *Stats) Mdev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ad float64
	for _, v := range s.samples {
		ad += math.Abs(v - mean)
	}
	return ad / float64(n)
}

// Percentile returns the p-th percentile (0..100) using nearest-rank.
func (s *Stats) Percentile(p float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.samples...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p/100*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// String summarises in ping's min/avg/max/mdev format.
func (s *Stats) String() string {
	return fmt.Sprintf("min/avg/max/mdev = %.3f/%.3f/%.3f/%.3f",
		s.Min(), s.Mean(), s.Max(), s.Mdev())
}
