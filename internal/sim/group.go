package sim

import "time"

// TimerGroup is a Clock wrapper that tracks every timer scheduled
// through it, so a whole subsystem's pending work can be cancelled in
// one call — the mechanism slice teardown uses to guarantee no orphaned
// timers survive in any domain heap. Protocol code keeps its own Timer
// handles and stops them individually as usual; the group is the
// backstop for the timers nobody saved (periodic reschedules, staggered
// start closures, shaper release chains).
//
// A group is owned by exactly one timeline: it must only be used from
// code running inside the wrapped clock's domain or at a barrier
// (driver code between Run calls, control-domain events) — the same
// contract as Domain.Schedule itself. It is not safe for concurrent
// use from other domains.
type TimerGroup struct {
	clock   Clock
	stopped bool
	nextID  uint64
	timers  map[uint64]Timer
	// sweepAt triggers a compaction sweep of entries whose timers are
	// no longer pending (fired entries self-delete, but individually
	// Stopped ones linger until swept).
	sweepAt int
}

// NewTimerGroup wraps clock. The zero threshold starts sweeps at 64
// outstanding entries.
func NewTimerGroup(clock Clock) *TimerGroup {
	return &TimerGroup{clock: clock, timers: make(map[uint64]Timer), sweepAt: 64}
}

// Now implements Clock.
func (g *TimerGroup) Now() time.Duration { return g.clock.Now() }

// Schedule implements Clock: fn runs on the wrapped clock at Now()+d
// and the timer is tracked until it fires, is stopped, or StopAll runs.
// After StopAll the group refuses new work (returning the zero Timer,
// on which Stop is a no-op), so a periodic callback racing teardown
// cannot re-arm itself.
func (g *TimerGroup) Schedule(d time.Duration, fn func()) Timer {
	if g.stopped {
		return Timer{}
	}
	id := g.nextID
	g.nextID++
	t := g.clock.Schedule(d, func() {
		delete(g.timers, id)
		fn()
	})
	g.timers[id] = t
	if len(g.timers) >= g.sweepAt {
		g.sweep()
	}
	return t
}

// sweep drops entries whose timers already fired or were stopped
// through their own handles, and raises the next sweep threshold so the
// amortized cost stays constant per Schedule.
func (g *TimerGroup) sweep() {
	for id, t := range g.timers {
		if !t.Pending() {
			delete(g.timers, id)
		}
	}
	g.sweepAt = 2 * len(g.timers)
	if g.sweepAt < 64 {
		g.sweepAt = 64
	}
}

// Live returns the number of tracked timers still pending — zero after
// a complete teardown, which is exactly what the lifecycle audit
// asserts.
func (g *TimerGroup) Live() int {
	n := 0
	for _, t := range g.timers {
		if t.Pending() {
			n++
		}
	}
	return n
}

// StopAll cancels every tracked pending timer and marks the group
// stopped. In-domain timers leave their heap immediately (Timer.Stop
// removes the event eagerly), so after StopAll none of the group's
// work remains in any domain heap. It returns how many timers were
// actually cancelled. Cancellation order is map order, which is fine:
// removing a set of events from a heap yields the same remaining heap
// contents regardless of removal order, so determinism is unaffected.
func (g *TimerGroup) StopAll() int {
	g.stopped = true
	n := 0
	for id, t := range g.timers {
		if t.Stop() {
			n++
		}
		delete(g.timers, id)
	}
	return n
}

// Stopped reports whether StopAll has run.
func (g *TimerGroup) Stopped() bool { return g.stopped }
