package sim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// relayHandler is a wire-capable typed handler for transport tests: a
// token (hop counter) circulates a ring of domains, each hop a typed
// cross-domain Send. Every process holds an identical replicated set of
// handlers, so handler ids and behavior agree across shards.
type relayHandler struct {
	dom   *Domain
	next  *Domain
	nh    *relayHandler
	limit uint64
	delay time.Duration
}

func (h *relayHandler) Invoke(arg any) {
	v := arg.(uint64)
	if v >= h.limit {
		return
	}
	h.dom.Send(h.next, h.delay, h.nh, v+1)
}

func (h *relayHandler) EncodeArg(dst []byte, arg any) []byte {
	return binary.LittleEndian.AppendUint64(dst, arg.(uint64))
}

func (h *relayHandler) DecodeArg(b []byte) (any, error) {
	if len(b) != 8 {
		return nil, fmt.Errorf("relay arg length %d", len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (h *relayHandler) DropArg(any) {}

// buildRelayWorld replicates one world: n node domains in a ring
// (stride-1 edges) plus stride-2 chords, all carrying relay tokens.
func buildRelayWorld(seed int64, n, workers int) (*Executor, []*Domain, []*relayHandler, []*relayHandler) {
	x := NewExecutor(seed, workers)
	doms := make([]*Domain, n)
	for i := range doms {
		doms[i] = x.NewDomain(fmt.Sprintf("d%d", i))
	}
	ring := make([]*relayHandler, n)
	chord := make([]*relayHandler, n)
	for i := range doms {
		ring[i] = &relayHandler{dom: doms[i], limit: 300, delay: time.Millisecond}
		chord[i] = &relayHandler{dom: doms[i], limit: 150, delay: 3 * time.Millisecond}
	}
	for i := range doms {
		ring[i].next = doms[(i+1)%n]
		ring[i].nh = ring[(i+1)%n]
		chord[i].next = doms[(i+2)%n]
		chord[i].nh = chord[(i+2)%n]
		doms[(i+1)%n].ObserveInboundLink(doms[i], time.Millisecond)
		doms[(i+2)%n].ObserveInboundLink(doms[i], 3*time.Millisecond)
	}
	for i := range doms {
		x.BindWire(ring[i])
		x.BindWire(chord[i])
	}
	return x, doms, ring, chord
}

func seedRelays(doms []*Domain, ring, chord []*relayHandler) {
	for i := range doms {
		d := doms[i]
		r, c := ring[i], chord[i]
		d.Schedule(time.Duration(i)*137*time.Microsecond, func() {
			d.Send(r.next, r.delay, r.nh, uint64(0))
		})
		if i%2 == 0 {
			d.Schedule(time.Duration(i)*211*time.Microsecond, func() {
				d.Send(c.next, c.delay, c.nh, uint64(0))
			})
		}
	}
}

type shardOutcome struct {
	digests   []uint64
	rounds    uint64
	fallbacks uint64
	fired     uint64
	err       error
}

// runRelayShard replicates the whole scenario on one shard: build,
// distribute, seed, run two window segments with a mid-run reseed.
func runRelayShard(seed int64, n, workers, shard, shards int, tr DomainTransport) shardOutcome {
	x, doms, ring, chord := buildRelayWorld(seed, n, workers)
	if shards > 1 {
		x.Distribute(tr, shard, shards)
	}
	defer x.Shutdown()
	seedRelays(doms, ring, chord)
	if err := x.Run(200 * time.Millisecond); err != nil {
		return shardOutcome{err: err}
	}
	// Driver-time reseed between segments: replicated on every shard,
	// materialized only at owners.
	seedRelays(doms, ring, chord)
	if err := x.Run(500 * time.Millisecond); err != nil {
		return shardOutcome{err: err}
	}
	return shardOutcome{digests: x.DomainDigests(), rounds: x.Rounds(),
		fallbacks: x.Fallbacks(), fired: x.TotalFired()}
}

// mergeDigests selects each domain's digest from its owning shard's
// report and folds the whole-world digest.
func mergeDigests(outcomes []shardOutcome, shards int) uint64 {
	merged := make([]uint64, len(outcomes[0].digests))
	for dom := range merged {
		merged[dom] = outcomes[OwnerShard(int32(dom), shards)].digests[dom]
	}
	return FoldDigests(merged)
}

// TestSocketShardParity runs the identical seeded relay scenario
// in-process and split across three executors (a coordinator and two
// workers) joined by loopback TCP socket transports, and requires the
// merged per-domain schedule digests — and the epoch/fallback counts —
// to be byte-identical.
func TestSocketShardParity(t *testing.T) {
	const (
		seed    = 12345
		n       = 9
		shards  = 3
		timeout = 10 * time.Second
	)
	base := runRelayShard(seed, n, 2, 0, 1, nil)
	if base.err != nil {
		t.Fatalf("in-process run: %v", base.err)
	}
	if base.fired == 0 {
		t.Fatal("scenario fired no events")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	outcomes := make([]shardOutcome, shards)
	var wg sync.WaitGroup
	for s := 1; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			w, payload, err := DialCoordinator(ln.Addr().String(), s, timeout)
			if err != nil {
				outcomes[s] = shardOutcome{err: err}
				return
			}
			defer w.Close()
			if string(payload) != "relay-scenario" {
				outcomes[s] = shardOutcome{err: fmt.Errorf("payload %q", payload)}
				return
			}
			out := runRelayShard(seed, n, 1, s, shards, w)
			if out.err == nil {
				out.err = w.Report(out.digests, nil)
			}
			outcomes[s] = out
		}(s)
	}
	coord, err := AcceptWorkers(ln, shards, []byte("relay-scenario"), timeout)
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	defer coord.Close()
	outcomes[0] = runRelayShard(seed, n, 2, 0, shards, coord)
	if outcomes[0].err != nil {
		t.Fatalf("coordinator run: %v", outcomes[0].err)
	}
	reports, err := coord.Gather()
	if err != nil {
		t.Fatalf("gather: %v", err)
	}
	wg.Wait()
	for s := 1; s < shards; s++ {
		if outcomes[s].err != nil {
			t.Fatalf("worker %d: %v", s, outcomes[s].err)
		}
	}
	// The digests each worker reported over the wire must match what it
	// measured locally.
	for _, r := range reports {
		local := outcomes[r.Shard].digests
		if len(r.Digests) != len(local) {
			t.Fatalf("shard %d reported %d digests, want %d", r.Shard, len(r.Digests), len(local))
		}
		for i := range local {
			if r.Digests[i] != local[i] {
				t.Fatalf("shard %d digest[%d] wire mismatch", r.Shard, i)
			}
		}
	}

	merged := mergeDigests(outcomes, shards)
	want := FoldDigests(base.digests)
	if merged != want {
		t.Fatalf("merged sharded digest %016x != in-process %016x", merged, want)
	}
	// Owned digests must agree with the in-process run domain by domain.
	for dom := range base.digests {
		owner := OwnerShard(int32(dom), shards)
		if got := outcomes[owner].digests[dom]; got != base.digests[dom] {
			t.Fatalf("domain %d (owner shard %d): digest %016x != %016x",
				dom, owner, got, base.digests[dom])
		}
	}
	// Lockstep: every shard took the identical branch sequence. (Epoch
	// counts legitimately differ from the 1-process run — pinned remote
	// promises shorten each granted window — but the shards themselves
	// must agree step for step.)
	for s := 1; s < shards; s++ {
		if outcomes[s].rounds != outcomes[0].rounds || outcomes[s].fallbacks != outcomes[0].fallbacks {
			t.Fatalf("shard %d rounds/fallbacks %d/%d != shard 0 %d/%d",
				s, outcomes[s].rounds, outcomes[s].fallbacks, outcomes[0].rounds, outcomes[0].fallbacks)
		}
	}
}

// dyingTransport simulates a worker process crash: after a fixed number
// of supersteps it slams the connection shut.
type dyingTransport struct {
	*SockWorker
	after int
	calls int
}

func (d *dyingTransport) Exchange(x *Executor) error {
	d.calls++
	if d.calls > d.after {
		d.SockWorker.Close()
		return errors.New("simulated worker death")
	}
	return d.SockWorker.Exchange(x)
}

// TestWorkerDeathSurfacesTypedError kills a worker mid-run and requires
// the coordinator's Executor.Run to return a *TransportError promptly
// (no hang) with the sticky error retrievable from Err().
func TestWorkerDeathSurfacesTypedError(t *testing.T) {
	const (
		seed    = 77
		n       = 6
		shards  = 2
		timeout = 5 * time.Second
	)
	cc, wc := net.Pipe()
	done := make(chan shardOutcome, 1)
	go func() {
		w, _, err := AttachWorker(wc, 1, timeout)
		if err != nil {
			done <- shardOutcome{err: err}
			return
		}
		dt := &dyingTransport{SockWorker: w, after: 4}
		done <- runRelayShard(seed, n, 1, 1, shards, dt)
	}()
	coord, err := AttachCoordinator([]net.Conn{cc}, nil, timeout)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	defer coord.Close()

	start := time.Now()
	out := runRelayShard(seed, n, 1, 0, shards, coord)
	if out.err == nil {
		t.Fatal("coordinator Run succeeded despite worker death")
	}
	var te *TransportError
	if !errors.As(out.err, &te) {
		t.Fatalf("coordinator error %T (%v) is not *TransportError", out.err, out.err)
	}
	if te.Shard != 1 {
		t.Fatalf("TransportError.Shard = %d, want 1", te.Shard)
	}
	if elapsed := time.Since(start); elapsed > timeout+2*time.Second {
		t.Fatalf("coordinator took %v to surface the death (deadline %v)", elapsed, timeout)
	}
	wout := <-done
	if wout.err == nil {
		t.Fatal("dying worker reported success")
	}
}

// TestSilentPeerTimesOut covers the hang bound: a worker that
// handshakes and then goes silent must trip the coordinator's read
// deadline, not block forever.
func TestSilentPeerTimesOut(t *testing.T) {
	const timeout = 300 * time.Millisecond
	cc, wc := net.Pipe()
	defer wc.Close()
	go func() {
		// Handshake, then say nothing.
		w, _, err := AttachWorker(wc, 1, 5*time.Second)
		if err == nil {
			defer w.Close()
			// Keep the connection open past the coordinator's deadline.
			time.Sleep(5 * timeout)
		}
	}()
	coord, err := AttachCoordinator([]net.Conn{cc}, nil, timeout)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	defer coord.Close()
	start := time.Now()
	out := runRelayShard(99, 4, 1, 0, 2, coord)
	if out.err == nil {
		t.Fatal("coordinator Run succeeded with a silent peer")
	}
	var te *TransportError
	if !errors.As(out.err, &te) {
		t.Fatalf("error %T is not *TransportError", out.err)
	}
	if elapsed := time.Since(start); elapsed > 10*timeout {
		t.Fatalf("timeout took %v, deadline %v", elapsed, timeout)
	}
}

// TestHandshakeDeadline bounds AcceptWorkers when no worker ever
// connects.
func TestHandshakeDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	start := time.Now()
	if _, err := AcceptWorkers(ln, 2, nil, 200*time.Millisecond); err == nil {
		t.Fatal("AcceptWorkers succeeded with no workers")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("handshake deadline took %v", elapsed)
	}
}

// TestClosureAcrossShardsIsTypedError pins the contract that only typed
// Sends cross shards: an event-context closure SendTo into a remote
// domain surfaces a typed transport error at the next exchange barrier
// instead of silently losing the message.
func TestClosureAcrossShardsIsTypedError(t *testing.T) {
	const timeout = 5 * time.Second
	cc, wc := net.Pipe()
	workerErr := make(chan error, 1)
	go func() {
		w, _, err := AttachWorker(wc, 1, timeout)
		if err != nil {
			workerErr <- err
			return
		}
		defer w.Close()
		x := NewExecutor(1, 1)
		a := x.NewDomain("a") // owned by shard 0
		b := x.NewDomain("b") // owned by shard 1
		a.ObserveInboundLink(b, time.Millisecond)
		b.ObserveInboundLink(a, time.Millisecond)
		x.Distribute(w, 1, 2)
		defer x.Shutdown()
		b.Schedule(time.Millisecond, func() {
			b.SendTo(a, time.Millisecond, func() {})
		})
		workerErr <- x.Run(100 * time.Millisecond)
	}()
	coord, err := AttachCoordinator([]net.Conn{cc}, nil, timeout)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	defer coord.Close()
	x := NewExecutor(1, 1)
	a := x.NewDomain("a")
	b := x.NewDomain("b")
	a.ObserveInboundLink(b, time.Millisecond)
	b.ObserveInboundLink(a, time.Millisecond)
	x.Distribute(coord, 0, 2)
	defer x.Shutdown()
	b.Schedule(time.Millisecond, func() {
		b.SendTo(a, time.Millisecond, func() {})
	})
	cerr := x.Run(100 * time.Millisecond)
	werr := <-workerErr
	if werr == nil {
		t.Fatal("worker Run succeeded despite cross-shard closure")
	}
	var te *TransportError
	if !errors.As(werr, &te) {
		t.Fatalf("worker error %T is not *TransportError", werr)
	}
	if !strings.Contains(werr.Error(), "closure SendTo") {
		t.Fatalf("worker error %q does not name the closure contract", werr)
	}
	// The coordinator must fail too (FAIL broadcast or read error), not
	// hang; its exact error depends on timing.
	if cerr == nil {
		t.Fatal("coordinator Run succeeded despite worker abort")
	}
	if x.Err() == nil {
		t.Fatal("Executor.Err() not sticky after transport failure")
	}
}

// TestOwnerShard pins the domain->shard dealing.
func TestOwnerShard(t *testing.T) {
	if OwnerShard(0, 4) != 0 {
		t.Fatal("control domain must be owned everywhere (shard 0 semantics)")
	}
	if OwnerShard(5, 1) != 0 {
		t.Fatal("single shard owns everything")
	}
	counts := make(map[int]int)
	for dom := int32(1); dom <= 12; dom++ {
		counts[OwnerShard(dom, 3)]++
	}
	if counts[0] != 4 || counts[1] != 4 || counts[2] != 4 {
		t.Fatalf("round-robin dealing unbalanced: %v", counts)
	}
}
