package sim

import (
	"testing"
	"time"
)

// TestTickWheelCoalesces checks that many timers landing in the same
// quantum share one underlying heap event and fire in Schedule order at
// the slot boundary.
func TestTickWheelCoalesces(t *testing.T) {
	l := NewLoop(1)
	w := NewTickWheel(l.Domain, 100*time.Millisecond)
	var order []int
	var at []time.Duration
	for i := 0; i < 10; i++ {
		i := i
		// Deadlines 1..10 ms all round up to the 100 ms boundary.
		w.Schedule(time.Duration(i+1)*time.Millisecond, func() {
			order = append(order, i)
			at = append(at, l.Now())
		})
	}
	if got := l.Pending(); got != 1 {
		t.Fatalf("10 wheel timers should share 1 heap event, have %d", got)
	}
	l.Run(time.Second)
	if len(order) != 10 {
		t.Fatalf("fired %d of 10", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("fire order %v, want schedule order", order)
		}
		if at[i] != 100*time.Millisecond {
			t.Fatalf("entry %d fired at %v, want 100ms boundary", i, at[i])
		}
	}
	if sch, fired := w.Stats(); sch != 10 || fired != 1 {
		t.Fatalf("stats = (%d, %d), want (10, 1)", sch, fired)
	}
}

// TestTickWheelStop checks cancellation: a stopped entry never fires,
// Pending tracks it, and stopping twice reports false.
func TestTickWheelStop(t *testing.T) {
	l := NewLoop(1)
	w := NewTickWheel(l.Domain, 50*time.Millisecond)
	ran := 0
	tm := w.Schedule(10*time.Millisecond, func() { ran++ })
	keep := w.Schedule(10*time.Millisecond, func() { ran += 10 })
	if w.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", w.Pending())
	}
	if !tm.Stop() {
		t.Fatal("first Stop should report cancellation")
	}
	if tm.Stop() {
		t.Fatal("second Stop should be a no-op")
	}
	if w.Pending() != 1 {
		t.Fatalf("Pending after stop = %d, want 1", w.Pending())
	}
	if !keep.Pending() {
		t.Fatal("unstopped wheel timer should report Pending")
	}
	l.Run(time.Second)
	if ran != 10 {
		t.Fatalf("ran = %d, want 10 (stopped entry must not fire)", ran)
	}
	if keep.Pending() {
		t.Fatal("fired wheel timer should not report Pending")
	}
}

// TestTickWheelPeriodicRearm checks that a callback rescheduling itself
// lands in a future slot (the wheel behaves like a Clock for periodic
// protocol ticks) and that intervals never shrink below the request.
func TestTickWheelPeriodicRearm(t *testing.T) {
	l := NewLoop(1)
	w := NewTickWheel(l.Domain, 100*time.Millisecond)
	var fires []time.Duration
	var tick func()
	tick = func() {
		fires = append(fires, l.Now())
		if len(fires) < 5 {
			w.Schedule(250*time.Millisecond, tick)
		}
	}
	w.Schedule(250*time.Millisecond, tick)
	l.Run(10 * time.Second)
	if len(fires) != 5 {
		t.Fatalf("fired %d times, want 5", len(fires))
	}
	for i := 1; i < len(fires); i++ {
		gap := fires[i] - fires[i-1]
		if gap < 250*time.Millisecond {
			t.Fatalf("interval %d was %v, shorter than requested 250ms", i, gap)
		}
		if gap > 350*time.Millisecond {
			t.Fatalf("interval %d was %v, beyond one quantum of slack", i, gap)
		}
	}
}
