package sim

import (
	"sync/atomic"
	"time"
)

// Executor coordinates a set of Domains under classic conservative
// (lookahead-based) parallel discrete-event synchronization. Execution
// proceeds in rounds:
//
//  1. Barrier: every domain's inbox is drained into its heap.
//  2. Control phase: control-domain (id 0) events run one at a time,
//     globally serialized, while they precede every node domain's next
//     event — so topology changes, route recomputation, and driver
//     callbacks observe a world where no node has advanced past them.
//  3. Node phase: each node domain d with pending work is dispatched to
//     a worker with an inclusive horizon
//
//     W(d) = min(until, ctrlNext-1, min_{e != d} eff(e) + lookahead(d) - 1)
//
//     where lookahead(d) is the minimum latency of any cross-domain
//     link into d, and eff(e) is the earliest time domain e can act:
//     its own next event, or — because an idle domain can be awakened
//     by a message and then transmit — the earliest message any other
//     domain could send it, min_{f != e} next(f) + lookahead(e). Any
//     message that can still reach d arrives at or after
//     min-other-eff + lookahead(d) > W(d), strictly in d's future, so
//     running d up to W(d) can never receive a message from its past —
//     the conservative-PDES safety condition. (eff uses one level of
//     wake-up indirection; longer idle chains only make the true
//     earliest influence later, so the bound stays conservative.)
//
// Determinism does not depend on thread scheduling: every event carries
// a globally unique merge key (timestamp, origin domain id, origin
// sequence), heaps pop in that total order, and cross-domain messages
// carry their key with them. Runs with 1 worker and N workers execute
// the identical event sequence per domain and produce byte-identical
// schedule digests.
//
// If some domain's lookahead is zero (a cross-domain link with zero
// delay), horizons cannot advance; the executor then falls back to
// running the single globally minimal event sequentially. That is the
// exact total order a single shared heap would have used, so the result
// is still deterministic — it just doesn't scale.
type Executor struct {
	domains []*Domain
	loop    *Loop
	workers int
	stopped atomic.Bool

	workCh  chan *Domain
	doneCh  chan *Domain
	started bool
	closed  bool

	rounds    uint64
	fallbacks uint64
	scratch   []time.Duration
	eff       []time.Duration
}

// NewExecutor returns an executor with the given worker budget and its
// control domain (id 0) already created, seeded like NewLoop(seed).
// NewExecutor(seed, 1).Loop() is behaviorally identical to the classic
// single loop.
func NewExecutor(seed int64, workers int) *Executor {
	if workers < 1 {
		workers = 1
	}
	x := &Executor{workers: workers}
	ctrl := &Domain{id: 0, label: "control", exec: x, rng: NewRNG(seed),
		lookIn: maxTime, inboxMin: maxTime}
	x.domains = []*Domain{ctrl}
	x.loop = &Loop{Domain: ctrl, exec: x}
	return x
}

// Loop returns the control-domain façade, which preserves the classic
// sim.Loop API (Run, RunAll, Step, Schedule on the control timeline).
func (x *Executor) Loop() *Loop { return x.loop }

// Workers returns the configured worker budget.
func (x *Executor) Workers() int { return x.workers }

// NewDomain creates a node domain. Its RNG forks off the control
// stream, so the draw sequence is fixed by creation order alone. All
// domains must be created before the first Run.
func (x *Executor) NewDomain(label string) *Domain {
	ctrl := x.domains[0]
	d := &Domain{id: int32(len(x.domains)), label: label, exec: x,
		rng: ctrl.rng.Fork(), now: ctrl.now,
		lookIn: maxTime, inboxMin: maxTime}
	x.domains = append(x.domains, d)
	return d
}

// Domains returns the live domain list (control first). Callers must
// not mutate it.
func (x *Executor) Domains() []*Domain { return x.domains }

// Stats snapshots every domain's counters, control domain first.
func (x *Executor) Stats() []DomainStats {
	out := make([]DomainStats, len(x.domains))
	for i, d := range x.domains {
		out[i] = d.Stats()
	}
	return out
}

// Rounds returns how many parallel node-phase rounds have run.
func (x *Executor) Rounds() uint64 { return x.rounds }

// Fallbacks returns how many events ran through the sequential
// zero-lookahead fallback.
func (x *Executor) Fallbacks() uint64 { return x.fallbacks }

// TotalFired sums fired events across domains.
func (x *Executor) TotalFired() uint64 {
	var n uint64
	for _, d := range x.domains {
		n += d.stats.Fired
	}
	return n
}

// ScheduleDigest folds every domain's fired-event digest in domain-id
// order. Two runs of the same scenario match iff every domain fired the
// same events in the same order — the byte-identical replay check the
// worker-parity tests assert.
func (x *Executor) ScheduleDigest() uint64 {
	h := fnvOffset
	for _, d := range x.domains {
		h = (h ^ d.digest) * fnvPrime
	}
	return h
}

// Stop makes the current Run/RunAll return after events currently
// executing complete. Safe to call from event callbacks.
func (x *Executor) Stop() { x.stopped.Store(true) }

// Pending reports scheduled events across all domains, including
// not-yet-delivered cross-domain messages.
func (x *Executor) Pending() int {
	n := 0
	for _, d := range x.domains {
		n += len(d.heap)
		d.inMu.Lock()
		n += len(d.inbox)
		d.inMu.Unlock()
	}
	return n
}

// Shutdown releases the worker goroutines. The executor remains usable
// for single-domain stepping but must not Run multi-domain again.
// Idempotent; harmless on never-started executors.
func (x *Executor) Shutdown() {
	if x.started && !x.closed {
		x.closed = true
		close(x.workCh)
	}
}

// Run executes events until every domain's next event lies beyond
// until, or Stop is called. Virtual time in every domain is advanced to
// until when its work drains first, mirroring the classic Loop.Run
// contract.
func (x *Executor) Run(until time.Duration) {
	x.stopped.Store(false)
	if len(x.domains) == 1 {
		d := x.domains[0]
		for !x.stopped.Load() && len(d.heap) > 0 {
			if d.heap[0].at > until {
				d.now = until
				return
			}
			d.step()
		}
		if d.now < until {
			d.now = until
		}
		return
	}
	x.run(until, true)
}

// RunAll executes events until every queue is empty or Stop is called,
// leaving each domain's clock at its last event. Under multi-domain
// execution prefer Run(until): RunAll leaves domain clocks ragged,
// which is fine for draining but makes "schedule more work afterwards"
// ambiguous.
func (x *Executor) RunAll() {
	x.stopped.Store(false)
	if len(x.domains) == 1 {
		d := x.domains[0]
		for !x.stopped.Load() && d.step() {
		}
		return
	}
	x.run(maxTime, false)
}

// step runs the single globally earliest event (Loop.Step façade).
func (x *Executor) step() bool {
	if len(x.domains) == 1 {
		return x.domains[0].step()
	}
	x.deliverAll()
	return x.stepGlobalMin()
}

func (x *Executor) ensureWorkers() {
	if x.started {
		return
	}
	x.started = true
	n := x.workers
	if n > len(x.domains)-1 {
		n = len(x.domains) - 1
	}
	if n < 1 {
		n = 1
	}
	x.workCh = make(chan *Domain)
	// doneCh is buffered for every domain so workers never block
	// posting completions while the dispatcher is still handing out
	// work — the classic dispatch/complete deadlock.
	x.doneCh = make(chan *Domain, len(x.domains))
	for i := 0; i < n; i++ {
		go func() {
			for d := range x.workCh {
				d.runToHorizon()
				x.doneCh <- d
			}
		}()
	}
}

func (x *Executor) deliverAll() {
	for _, d := range x.domains {
		d.drainInbox()
	}
}

// advanceAll moves every domain clock forward to t (never backward).
// Called at control barriers so a control event at time t that touches
// a node's clock schedules against the correct base.
func (x *Executor) advanceAll(t time.Duration) {
	for _, d := range x.domains {
		if d.now < t {
			d.now = t
		}
	}
}

// nodeNext returns the earliest pending timestamp over node domains.
func (x *Executor) nodeNext() time.Duration {
	min := maxTime
	for _, d := range x.domains[1:] {
		if n := d.next(); n < min {
			min = n
		}
	}
	return min
}

// stepGlobalMin runs the single event with the globally smallest merge
// key — the sequential fallback. Inboxes must already be drained.
func (x *Executor) stepGlobalMin() bool {
	var best *Domain
	for _, d := range x.domains {
		if len(d.heap) == 0 {
			continue
		}
		if best == nil || less(d.heap[0], best.heap[0]) {
			best = d
		}
	}
	if best == nil {
		return false
	}
	best.step()
	return true
}

// satAdd adds durations with saturation at maxTime.
func satAdd(a, b time.Duration) time.Duration {
	s := a + b
	if s < a {
		return maxTime
	}
	return s
}

// run is the multi-domain round loop described on Executor.
func (x *Executor) run(until time.Duration, advance bool) {
	x.ensureWorkers()
	ctrl := x.domains[0]
	if len(x.scratch) < len(x.domains)-1 {
		x.scratch = make([]time.Duration, len(x.domains)-1)
		x.eff = make([]time.Duration, len(x.domains)-1)
	}
	for {
		if x.stopped.Load() {
			return
		}
		x.deliverAll()

		// Control phase. At equal timestamps the merge order (at, dom,
		// seq) puts control (domain 0) first, so the limit comparison
		// below is inclusive.
		ranCtrl := false
		for len(ctrl.heap) > 0 {
			if x.stopped.Load() {
				return
			}
			cn := ctrl.heap[0].at
			lim := until
			if nm := x.nodeNext(); nm < lim {
				lim = nm
			}
			if cn > lim {
				break
			}
			x.advanceAll(cn)
			ctrl.step()
			ranCtrl = true
		}
		if ranCtrl {
			// Control work may have scheduled node events or sent
			// messages; restart the round from the delivery barrier.
			continue
		}

		// Node phase: per-domain next-event times and the two smallest
		// (so the minimum "next of any other domain" is O(1) each).
		ctrlNext := maxTime
		if len(ctrl.heap) > 0 {
			ctrlNext = ctrl.heap[0].at
		}
		min1, min2 := maxTime, maxTime
		minIdx := -1
		for i, d := range x.domains[1:] {
			nt := d.next()
			x.scratch[i] = nt
			if nt < min1 {
				min2, min1, minIdx = min1, nt, i
			} else if nt < min2 {
				min2 = nt
			}
		}
		if min1 > until {
			// The control loop already ran everything at or before
			// min(until, nodeNext), so nothing within the window
			// remains anywhere.
			if advance {
				x.advanceAll(until)
			}
			return
		}

		// Earliest-possible-action time per domain: its next event, or
		// the earliest wake-up message another domain could send it.
		emin1, emin2 := maxTime, maxTime
		emIdx := -1
		for i, d := range x.domains[1:] {
			other := min1
			if i == minIdx {
				other = min2
			}
			eff := x.scratch[i]
			if wake := satAdd(other, d.lookIn); wake < eff {
				eff = wake
			}
			x.eff[i] = eff
			if eff < emin1 {
				emin2, emin1, emIdx = emin1, eff, i
			} else if eff < emin2 {
				emin2 = eff
			}
		}

		dispatched := 0
		for i, d := range x.domains[1:] {
			nt := x.scratch[i]
			if nt == maxTime {
				continue
			}
			other := emin1
			if i == emIdx {
				other = emin2
			}
			h := satAdd(other, d.lookIn) - 1
			if ctrlNext-1 < h {
				h = ctrlNext - 1
			}
			if until < h {
				h = until
			}
			if nt > h {
				if nt <= until {
					d.stats.Stalls++
				}
				continue
			}
			d.horizon = h
			dispatched++
			x.workCh <- d
		}
		if dispatched == 0 {
			// Zero lookahead somewhere: run exactly one globally
			// minimal event sequentially. Identical total order to a
			// shared heap, so determinism holds; only parallelism is
			// lost.
			x.fallbacks++
			x.stepGlobalMin()
			continue
		}
		for i := 0; i < dispatched; i++ {
			<-x.doneCh
		}
		x.rounds++
	}
}
