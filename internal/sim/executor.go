package sim

import (
	"sync"
	"sync/atomic"
	"time"
)

// Domain scheduler states (Domain.state). The state machine keeps each
// domain on at most one work queue and lets message arrivals mark a
// running domain dirty instead of double-queueing it:
//
//	idle -> queued        (enqueue: domain has potential work)
//	queued -> running     (a worker picked it up)
//	running -> dirty      (new input arrived mid-window; rerun)
//	dirty -> running      (the owning worker loops again)
//	running -> idle       (window fixpoint reached)
const (
	stateIdle int32 = iota
	stateQueued
	stateRunning
	stateDirty
)

// deque is one worker's run queue. The owner pushes and pops at the
// bottom (LIFO, cache-warm); idle workers steal from the top (FIFO, the
// oldest — least cache-relevant — entry). Queues hold at most one entry
// per domain, so a plain mutex is cheaper than a lock-free deque at
// these lengths.
type deque struct {
	mu    sync.Mutex
	items []*Domain
}

func (q *deque) push(d *Domain) {
	q.mu.Lock()
	q.items = append(q.items, d)
	q.mu.Unlock()
}

func (q *deque) popBottom() *Domain {
	q.mu.Lock()
	n := len(q.items)
	if n == 0 {
		q.mu.Unlock()
		return nil
	}
	d := q.items[n-1]
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	q.mu.Unlock()
	return d
}

func (q *deque) stealTop() *Domain {
	q.mu.Lock()
	n := len(q.items)
	if n == 0 {
		q.mu.Unlock()
		return nil
	}
	d := q.items[0]
	copy(q.items, q.items[1:])
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	q.mu.Unlock()
	return d
}

// Executor coordinates a set of Domains under conservative
// (lookahead-based) parallel discrete-event synchronization. Unlike the
// original design — a global barrier every time the narrowest horizon
// was exhausted, ~one barrier per minimum link delay of virtual time —
// domains now run free of each other between control barriers:
//
//   - Every domain publishes a monotone execution bound pub(d): a
//     promise that no event with an earlier timestamp will ever run in
//     d within the current window. After each execution window,
//     pub(d) = max(pub(d), min(next(d), H(d)+1)).
//
//   - A domain's inclusive horizon is derived from its in-neighbors'
//     promises: H(d) = min over registered edges e=(s->d) of
//     pub(s) + delay(e) - 1, capped by the run window and by the next
//     control event (coarse mode, when no edges are registered, uses
//     every other domain at the single minimum inbound delay). Any
//     message that can still arrive does so at or after pub(s)+delay,
//     strictly beyond H(d), so running d to H(d) never receives a
//     message from its past — the conservative-PDES safety condition.
//
//   - Workers drain a domain's inbox, run it to its horizon, flush its
//     outbound message trains, publish its new bound, and wake the
//     domains that received messages or whose horizon the new bound
//     widens. Wakes cascade through per-worker work-stealing queues
//     until the promises reach their fixpoint and the system goes
//     quiescent — the counting "epoch barrier": an atomic counter of
//     live domains whose zero-crossing wakes the coordinator.
//
//   - At quiescence the coordinator (the only context that touches the
//     control domain) runs due control events at a true barrier,
//     re-seeds the domains, and begins the next epoch. Rounds() counts
//     these epochs: control barriers plus fallback steps, not
//     per-lookahead round trips.
//
// Determinism does not depend on thread scheduling: per-domain event
// order is fixed by the merge key (timestamp, origin domain id, origin
// sequence), and the set of events run between barriers is the least
// fixpoint of the monotone promise equations, which chaotic iteration
// reaches regardless of wake order. Runs with 1 worker and N workers
// execute the identical event sequence per domain and produce
// byte-identical schedule digests.
//
// If some lookahead is zero (a zero-delay cross-domain cycle), promises
// stop rising and the system quiesces without progress; the coordinator
// then runs the single globally minimal event sequentially. That is the
// exact total order a single shared heap would have used, so the result
// is still deterministic — it just doesn't scale.
type Executor struct {
	domains []*Domain
	loop    *Loop
	workers int
	stopped atomic.Bool

	started  bool
	closed   bool
	nworkers int
	deques   []*deque
	quit     atomic.Bool

	parkMu   sync.Mutex
	parkCond *sync.Cond
	idle     int

	// live counts domains in queued/running/dirty states plus the
	// coordinator's seeding hold; its zero-crossing signals quiescence.
	live    atomic.Int64
	quietCh chan struct{}

	// untilA/ctrlGate publish the current run window and the next
	// control-event time to the workers (read in horizon math).
	untilA   atomic.Int64
	ctrlGate atomic.Int64

	rounds    uint64
	fallbacks uint64

	// transport is the cross-shard seam: an in-process no-op by default,
	// replaced by Distribute for sharded runs. shard/shards identify this
	// process's slice of the domain space; terr is the sticky transport
	// error that aborted the last Run, if any.
	transport DomainTransport
	shard     int
	shards    int
	terr      error

	// wireHandlers/wireIDs map typed handlers onto stable cross-process
	// ids (BindWire), assigned in registration order.
	wireHandlers []WireHandler
	wireIDs      map[WireHandler]uint32

	// Diagnostic counters (scheduler-dependent, outside the parity
	// contract).
	windows atomic.Uint64
	steals  atomic.Uint64
	parks   atomic.Uint64
	parkNS  atomic.Uint64

	rr int // round-robin cursor for coordinator seeding
}

// NewExecutor returns an executor with the given worker budget and its
// control domain (id 0) already created, seeded like NewLoop(seed).
// NewExecutor(seed, 1).Loop() is behaviorally identical to the classic
// single loop.
func NewExecutor(seed int64, workers int) *Executor {
	if workers < 1 {
		workers = 1
	}
	x := &Executor{workers: workers, transport: inprocTransport{}, shards: 1}
	ctrl := &Domain{id: 0, label: "control", exec: x, rng: NewRNG(seed),
		lookIn: maxTime}
	ctrl.inboxMin.Store(int64(maxTime))
	x.domains = []*Domain{ctrl}
	x.loop = &Loop{Domain: ctrl, exec: x}
	return x
}

// Loop returns the control-domain façade, which preserves the classic
// sim.Loop API (Run, RunAll, Step, Schedule on the control timeline).
func (x *Executor) Loop() *Loop { return x.loop }

// Workers returns the configured worker budget.
func (x *Executor) Workers() int { return x.workers }

// NewDomain creates a node domain. Its RNG forks off the control
// stream, so the draw sequence is fixed by creation order alone. All
// domains must be created before the first Run.
func (x *Executor) NewDomain(label string) *Domain {
	ctrl := x.domains[0]
	d := &Domain{id: int32(len(x.domains)), label: label, exec: x,
		rng: ctrl.rng.Fork(), now: ctrl.now,
		lookIn: maxTime}
	d.inboxMin.Store(int64(maxTime))
	if x.shards > 1 {
		d.remote = OwnerShard(d.id, x.shards) != x.shard
	}
	x.domains = append(x.domains, d)
	return d
}

// Domains returns the live domain list (control first). Callers must
// not mutate it.
func (x *Executor) Domains() []*Domain { return x.domains }

// Stats snapshots every domain's counters, control domain first.
func (x *Executor) Stats() []DomainStats {
	out := make([]DomainStats, len(x.domains))
	for i, d := range x.domains {
		out[i] = d.Stats()
	}
	return out
}

// Rounds returns how many coordinator epochs have run: control barriers
// and fallback steps, each separated by a full parallel quiescence
// phase. (Under the pre-train engine this counted per-lookahead barrier
// rounds; epochs are the comparable unit now.)
func (x *Executor) Rounds() uint64 { return x.rounds }

// Fallbacks returns how many events ran through the sequential
// zero-lookahead fallback.
func (x *Executor) Fallbacks() uint64 { return x.fallbacks }

// Windows returns how many per-domain execution windows workers ran
// (drain/run/flush/publish cycles). Scheduler-dependent; diagnostic.
func (x *Executor) Windows() uint64 { return x.windows.Load() }

// Steals returns how many domains idle workers stole from another
// worker's queue. Scheduler-dependent; diagnostic.
func (x *Executor) Steals() uint64 { return x.steals.Load() }

// Parks returns how many times workers parked for lack of work, and
// ParkTime the wall-clock total spent parked. Scheduler-dependent.
func (x *Executor) Parks() uint64 { return x.parks.Load() }

// ParkTime returns the cumulative wall time workers spent parked.
func (x *Executor) ParkTime() time.Duration { return time.Duration(x.parkNS.Load()) }

// TrainStats sums flushed train counts and the typed messages they
// carried across domains.
func (x *Executor) TrainStats() (trains, msgs uint64) {
	for _, d := range x.domains {
		trains += d.stats.Trains
		msgs += d.stats.TrainMsgs
	}
	return trains, msgs
}

// Deliveries sums cross-domain messages materialized into domain heaps
// (both the typed train path and closure SendTo).
func (x *Executor) Deliveries() uint64 {
	var n uint64
	for _, d := range x.domains {
		n += d.stats.Delivered
	}
	return n
}

// TotalFired sums fired events across domains.
func (x *Executor) TotalFired() uint64 {
	var n uint64
	for _, d := range x.domains {
		n += d.stats.Fired
	}
	return n
}

// ScheduleDigest folds every domain's fired-event digest in domain-id
// order. Two runs of the same scenario match iff every domain fired the
// same events in the same order — the byte-identical replay check the
// worker-parity tests assert.
func (x *Executor) ScheduleDigest() uint64 {
	h := fnvOffset
	for _, d := range x.domains {
		h = (h ^ d.digest) * fnvPrime
	}
	return h
}

// Stop makes the current Run/RunAll return after events currently
// executing complete. Safe to call from event callbacks.
func (x *Executor) Stop() { x.stopped.Store(true) }

// Pending reports scheduled events across all owned domains, including
// not-yet-delivered cross-domain messages and unflushed trains.
// Replica domains are excluded: their pending input belongs to their
// owning shard.
func (x *Executor) Pending() int {
	n := 0
	for _, d := range x.domains {
		if d.remote {
			continue
		}
		n += len(d.heap)
		n += d.trainBacklog()
		d.inMu.Lock()
		n += len(d.inbox) + len(d.tin)
		d.inMu.Unlock()
	}
	return n
}

// Shutdown releases the worker goroutines. The executor remains usable
// for single-domain stepping but must not Run multi-domain again.
// Idempotent; harmless on never-started executors.
func (x *Executor) Shutdown() {
	if x.started && !x.closed {
		x.closed = true
		x.quit.Store(true)
		x.parkMu.Lock()
		x.parkCond.Broadcast()
		x.parkMu.Unlock()
	}
}

// Run executes events until every domain's next event lies beyond
// until, or Stop is called. Virtual time in every domain is advanced to
// until when its work drains first, mirroring the classic Loop.Run
// contract. In a sharded run the returned error is the typed
// TransportError that aborted the superstep protocol (a peer died,
// timed out, or desynchronized); single-process runs never fail.
func (x *Executor) Run(until time.Duration) error {
	x.stopped.Store(false)
	if len(x.domains) == 1 {
		d := x.domains[0]
		for !x.stopped.Load() && len(d.heap) > 0 {
			if d.heap[0].at > until {
				d.now = until
				return nil
			}
			d.step()
		}
		if d.now < until {
			d.now = until
		}
		return nil
	}
	return x.run(until, true)
}

// RunAll executes events until every queue is empty or Stop is called,
// leaving each domain's clock at its last event. Under multi-domain
// execution prefer Run(until): RunAll leaves domain clocks ragged,
// which is fine for draining but makes "schedule more work afterwards"
// ambiguous.
func (x *Executor) RunAll() {
	x.stopped.Store(false)
	if len(x.domains) == 1 {
		d := x.domains[0]
		for !x.stopped.Load() && d.step() {
		}
		return
	}
	x.run(maxTime, false)
}

// step runs the single globally earliest event (Loop.Step façade).
func (x *Executor) step() bool {
	if len(x.domains) == 1 {
		return x.domains[0].step()
	}
	x.flushAllTrains()
	x.deliverAll()
	return x.stepGlobalMin()
}

func (x *Executor) ensureWorkers() {
	if x.started {
		return
	}
	x.started = true
	owned := 0
	for _, d := range x.domains[1:] {
		if !d.remote {
			owned++
		}
	}
	n := x.workers
	if n > owned {
		n = owned
	}
	if n < 1 {
		n = 1
	}
	x.nworkers = n
	x.deques = make([]*deque, n)
	for i := range x.deques {
		x.deques[i] = &deque{}
	}
	x.parkCond = sync.NewCond(&x.parkMu)
	x.quietCh = make(chan struct{}, 1)
	for i := 0; i < n; i++ {
		go x.worker(i)
	}
}

// flushAllTrains flushes every domain's outbound trains into the
// destination inboxes and clears the wake scratch lists. Barrier
// context only (driver sends between runs, control events, fallback
// steps).
func (x *Executor) flushAllTrains() {
	for _, d := range x.domains {
		d.flushTrains()
		d.flushed = d.flushed[:0]
		d.sentTo = d.sentTo[:0]
	}
}

func (x *Executor) deliverAll() {
	for _, d := range x.domains {
		if d.remote {
			// Replica inboxes hold cross-shard traffic awaiting the next
			// transport Exchange; they are never materialized locally.
			continue
		}
		d.drainInbox()
	}
}

// advanceAll moves every domain clock forward to t (never backward).
// Called at control barriers so a control event at time t that touches
// a node's clock schedules against the correct base.
func (x *Executor) advanceAll(t time.Duration) {
	for _, d := range x.domains {
		if d.now < t {
			d.now = t
		}
	}
}

// nodeNext returns the earliest pending timestamp over owned node
// domains.
func (x *Executor) nodeNext() time.Duration {
	min := maxTime
	for _, d := range x.domains[1:] {
		if d.remote {
			continue
		}
		if n := d.next(); n < min {
			min = n
		}
	}
	return min
}

// stepGlobalMin runs the single event with the globally smallest merge
// key — the sequential fallback. Inboxes must already be drained.
func (x *Executor) stepGlobalMin() bool {
	var best *Domain
	for _, d := range x.domains {
		if d.remote || len(d.heap) == 0 {
			continue
		}
		if best == nil || less(d.heap[0], best.heap[0]) {
			best = d
		}
	}
	if best == nil {
		return false
	}
	best.step()
	return true
}

// satAdd adds durations with saturation at maxTime.
func satAdd(a, b time.Duration) time.Duration {
	s := a + b
	if s < a {
		return maxTime
	}
	return s
}

// progress is the coordinator's epoch progress metric: total events
// consumed (fired or lazily discarded). Barrier context only.
func (x *Executor) progress() uint64 {
	var n uint64
	for _, d := range x.domains {
		n += d.stats.Fired + d.stats.Cancelled
	}
	return n
}

// enqueue marks d runnable and queues it if it was idle. wid is the
// calling worker's queue (its own deque, keeping wake chains
// cache-local), or -1 for coordinator round-robin seeding. The control
// domain is never enqueued: only the coordinator runs it, at barriers.
func (x *Executor) enqueue(d *Domain, wid int) {
	if d.id == 0 || d.remote {
		return
	}
	for {
		switch s := d.state.Load(); s {
		case stateIdle:
			if d.state.CompareAndSwap(stateIdle, stateQueued) {
				x.live.Add(1)
				x.pushWork(d, wid)
				return
			}
		case stateQueued, stateDirty:
			return
		case stateRunning:
			if d.state.CompareAndSwap(stateRunning, stateDirty) {
				return
			}
		}
	}
}

func (x *Executor) pushWork(d *Domain, wid int) {
	if wid < 0 {
		wid = x.rr
		x.rr++
		if x.rr >= x.nworkers {
			x.rr = 0
		}
	}
	x.deques[wid].push(d)
	x.parkMu.Lock()
	if x.idle > 0 {
		x.parkCond.Signal()
	}
	x.parkMu.Unlock()
}

// released drops one unit of the live count; the zero-crossing signals
// the coordinator that the epoch went quiescent.
func (x *Executor) released() {
	if x.live.Add(-1) == 0 {
		select {
		case x.quietCh <- struct{}{}:
		default:
		}
	}
}

// anyQueued reports whether any deque holds work (park double-check).
func (x *Executor) anyQueued() bool {
	for _, q := range x.deques {
		q.mu.Lock()
		n := len(q.items)
		q.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

func (x *Executor) worker(id int) {
	my := x.deques[id]
	spins := 0
	for {
		if d := my.popBottom(); d != nil {
			spins = 0
			x.runDomain(id, d)
			continue
		}
		stolen := false
		for i := 1; i < x.nworkers; i++ {
			if d := x.deques[(id+i)%x.nworkers].stealTop(); d != nil {
				x.steals.Add(1)
				stolen = true
				spins = 0
				x.runDomain(id, d)
				break
			}
		}
		if stolen {
			continue
		}
		if x.quit.Load() {
			return
		}
		if spins++; spins < 8 {
			continue
		}
		// Park: recheck under the lock so a push+signal racing this
		// decision cannot be lost, then wait.
		x.parkMu.Lock()
		if x.anyQueued() || x.quit.Load() {
			x.parkMu.Unlock()
			spins = 0
			continue
		}
		x.idle++
		x.parks.Add(1)
		t0 := time.Now()
		x.parkCond.Wait()
		x.idle--
		x.parkNS.Add(uint64(time.Since(t0)))
		x.parkMu.Unlock()
		spins = 0
	}
}

// horizonOf computes d's inclusive safe horizon from its in-neighbors'
// published bounds: with registered edges, per-pair (pub(src)+delay);
// otherwise every other node domain at the coarse minimum inbound
// delay. Both are capped by the run window and the next control event.
func (x *Executor) horizonOf(d *Domain, until time.Duration) time.Duration {
	h := until
	if cg := time.Duration(x.ctrlGate.Load()); cg != maxTime && cg-1 < h {
		h = cg - 1
	}
	if d.edged {
		for _, e := range d.ins {
			if b := satAdd(e.src.pubTime(), e.delay) - 1; b < h {
				h = b
			}
		}
	} else if d.lookIn < maxTime {
		for _, s := range x.domains[1:] {
			if s == d {
				continue
			}
			if b := satAdd(s.pubTime(), d.lookIn) - 1; b < h {
				h = b
			}
		}
	}
	return h
}

// runDomain is the worker-side execution window loop for one claimed
// domain: snapshot the safe horizon, drain the inbox, run the window,
// flush trains,
// publish the new bound, wake dependents, and loop while new input
// keeps arriving (dirty state). Exits through running->idle, releasing
// the domain's live count.
func (x *Executor) runDomain(wid int, d *Domain) {
	if !d.state.CompareAndSwap(stateQueued, stateRunning) {
		d.state.Store(stateRunning)
	}
	until := time.Duration(x.untilA.Load())
	for {
		x.windows.Add(1)
		// Snapshot the horizon BEFORE draining the inbox. A neighbor can
		// flush a message and raise its published bound at any point; if
		// we drained first, a message landing in the gap could carry a
		// timestamp inside a horizon computed from the *raised* bound,
		// and this window would run past it (late fire, order violation).
		// Read pubs first and every message flushed afterwards arrives
		// strictly beyond h (pub is monotone, arrivals are >= pub+delay);
		// the sender's post-flush enqueue marks us dirty so the loop
		// comes back for it.
		h := x.horizonOf(d, until)
		d.drainInbox()
		if len(d.heap) > 0 && d.heap[0].at <= h {
			d.runTo(h)
		} else if n := d.next(); n <= until && n > h {
			d.stats.Stalls++
		}
		d.flushTrains()
		// Publish after flushing, so a receiver that observes the new
		// bound also observes every message it promises about.
		np := d.next()
		if hp := satAdd(h, 1); hp < np {
			np = hp
		}
		raised := false
		if cur := d.pub.Load(); int64(np) > cur {
			d.pub.Store(int64(np))
			raised = true
		}
		// Wake message receivers first (they have concrete work), then
		// — if the bound rose — the domains whose horizons it widens.
		for _, dst := range d.flushed {
			x.enqueue(dst, wid)
		}
		d.flushed = d.flushed[:0]
		for _, dst := range d.sentTo {
			x.enqueue(dst, wid)
		}
		d.sentTo = d.sentTo[:0]
		if raised {
			if len(d.outs) > 0 {
				for _, o := range d.outs {
					x.enqueue(o, wid)
				}
			} else if !d.edged {
				for _, o := range x.domains[1:] {
					if o != d {
						x.enqueue(o, wid)
					}
				}
			}
		}
		if d.state.CompareAndSwap(stateRunning, stateIdle) {
			x.released()
			return
		}
		// Marked dirty while running: new input arrived; go again.
		d.state.Store(stateRunning)
	}
}

// run is the multi-domain coordinator loop described on Executor. Each
// iteration is one superstep: flush and exchange cross-shard traffic,
// deliver inboxes, agree on the global node bound through the
// transport, then take exactly one action — one control event, a
// return (window exhausted), one sequential fallback event, or one
// parallel epoch. Every branch decision is a pure function of the
// agreed Decision plus control-domain state replicated on all shards,
// so sharded processes stay in lockstep. In-process (the default
// transport) the loop executes the identical event sequence the
// pre-transport engine did.
//
// Control runs at most ONE event per agreement: a control event can
// schedule node events that exist only at their owning shard, so the
// global node bound must be re-agreed before deciding whether another
// control event still precedes all node work.
func (x *Executor) run(until time.Duration, advance bool) error {
	x.ensureWorkers()
	ctrl := x.domains[0]
	x.untilA.Store(int64(until))
	// Promises from a previous window may exceed events the driver has
	// scheduled since; restart them from the clocks (no workers are
	// active here, and lower bounds are always safe).
	for _, d := range x.domains {
		d.pub.Store(int64(d.now))
	}
	// The fallback decision needs the previous iteration's epoch
	// outcome: an epoch that ran but consumed nothing anywhere means
	// the promise fixpoint is stuck below every pending event.
	var (
		lastDelta    uint64
		lastEpochRan bool
	)
	for {
		if x.stopped.Load() {
			return nil
		}
		x.flushAllTrains()
		if err := x.transport.Exchange(x); err != nil {
			return x.fail(err)
		}
		x.deliverAll()

		v := Vote{Key: x.localMinKey(), Delta: lastDelta, EpochRan: lastEpochRan}
		lastDelta, lastEpochRan = 0, false
		dec, err := x.transport.Agree(x, v)
		if err != nil {
			return x.fail(err)
		}

		// Control phase, at a true barrier. At equal timestamps the
		// merge order (at, dom, seq) puts control (domain 0) first, so
		// the limit comparison below is inclusive.
		if len(ctrl.heap) > 0 {
			cn := ctrl.heap[0].at
			lim := until
			if dec.NodeNext < lim {
				lim = dec.NodeNext
			}
			if cn <= lim {
				x.advanceAll(cn)
				ctrl.step()
				// Control work may have scheduled node events or sent
				// messages; restart from the exchange barrier.
				continue
			}
		}

		ctrlNext := maxTime
		if len(ctrl.heap) > 0 {
			ctrlNext = ctrl.heap[0].at
		}
		x.ctrlGate.Store(int64(ctrlNext))

		if dec.NodeNext > until {
			// The control phase already ran everything at or before
			// min(until, NodeNext), so nothing within the window
			// remains anywhere.
			if advance {
				x.advanceAll(until)
			}
			return nil
		}

		if dec.Fallback {
			// Quiescent with no progress anywhere: a zero-lookahead
			// cycle (or a promise fixpoint below every pending event).
			// Run exactly the globally minimal event sequentially — on
			// the shard that owns it — which is the identical total
			// order a shared heap would have used, so determinism
			// holds; only parallelism is lost.
			x.fallbacks++
			x.stepLocalKey(dec.FallbackKey)
			continue
		}

		// Epoch: seed every owned node domain (idle ones still relay
		// promise updates), hold the live latch until seeding completes
		// so a fast cascade cannot signal quiescence mid-seed, then wait
		// for the zero-crossing.
		before := x.progress()
		select {
		case <-x.quietCh:
		default:
		}
		// Sync promises up from the clocks BEFORE the first enqueue: the
		// moment one domain is queued, worker cascades are live and
		// now/pub belong to the workers. Interleaving the sync with the
		// enqueues raced — and the check-then-store could overwrite a
		// concurrently raised bound with a stale lower one.
		//
		// Replica domains are pinned to the agreed global bound instead:
		// every event any shard fires this epoch has timestamp >= that
		// bound, so a cross-shard message from a replica's owner arrives
		// at >= bound+delay — strictly beyond any horizon derived from
		// the pin — and is injected at the next Exchange before it could
		// ever be late.
		for _, d := range x.domains[1:] {
			if d.remote {
				d.pub.Store(int64(dec.NodeNext))
				continue
			}
			if p := int64(d.now); p > d.pub.Load() {
				d.pub.Store(p)
			}
		}
		x.live.Add(1)
		for _, d := range x.domains[1:] {
			x.enqueue(d, -1)
		}
		x.released()
		<-x.quietCh
		x.rounds++
		lastDelta = x.progress() - before
		lastEpochRan = true
	}
}
