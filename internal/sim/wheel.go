package sim

import (
	"sync/atomic"
	"time"
)

// TickWheel is a Clock that quantizes deadlines to a fixed slot width so
// many coarse periodic timers share one underlying heap event per slot.
// Protocol ticks (OSPF hellos, RIP periodic updates, LSA refresh sweeps)
// do not need microsecond placement — they need "about every 5 seconds"
// — but each one scheduled directly on a Domain is a separate heap
// event, and in a sharded run every such event bounds the domain's
// published execution promise, forcing neighbors to wait on timer
// housekeeping. Rounding ticks up to the next slot boundary lets one
// heap event fire a whole batch, and stretches the gap between
// consecutive events, which widens the horizon every neighbor can run
// to.
//
// Deadlines only ever round up (never early), so interval invariants
// like Dead >= 2*Hello survive quantization. Entries within a slot fire
// in Schedule order, and slots are ordinary domain events, so runs stay
// deterministic. Like any Clock, a wheel is owned by its domain's
// timeline and must not be shared across domains.
type TickWheel struct {
	clock   Clock
	quantum time.Duration
	slots   map[int64]*wheelSlot
	// spare recycles slot containers (entries are not pooled: a Timer
	// handle holds a pointer to its entry, and reusing the entry would
	// let a stale Stop cancel an unrelated tick).
	spare *wheelSlot
	// scheduled and fired count entries and slot events, for the
	// coalescing ratio in executor profiles.
	scheduled, fired uint64
}

type wheelEntry struct {
	fn     func()
	cancel atomic.Uint32
	slot   *wheelSlot
}

type wheelSlot struct {
	entries []*wheelEntry
	wheel   *TickWheel
	idx     int64
	// live counts unstopped entries; when the last one is stopped the
	// slot's heap event is cancelled too, so a torn-down subsystem
	// leaves nothing behind in the domain heap (the lifecycle audits
	// assert exactly that). Mutated only from the owning domain or at a
	// barrier — the same contract as Schedule itself.
	live  int
	timer Timer
}

// stop cancels one entry (Timer.Stop delegates here). It reports
// whether the entry was still pending.
func (e *wheelEntry) stop() bool {
	if !e.cancel.CompareAndSwap(timerPending, timerStopped) {
		return false
	}
	s := e.slot
	if s != nil && s.wheel != nil {
		s.live--
		if s.live == 0 {
			s.timer.Stop()
			delete(s.wheel.slots, s.idx)
			s.wheel = nil
		}
	}
	return true
}

// NewTickWheel wraps clock with slot width quantum (<= 0 defaults to
// 100 ms, fine-grained enough that a 5 s hello jitters by at most 2%).
func NewTickWheel(clock Clock, quantum time.Duration) *TickWheel {
	if quantum <= 0 {
		quantum = 100 * time.Millisecond
	}
	return &TickWheel{clock: clock, quantum: quantum, slots: make(map[int64]*wheelSlot)}
}

// Now implements Clock.
func (w *TickWheel) Now() time.Duration { return w.clock.Now() }

// Quantum returns the slot width.
func (w *TickWheel) Quantum() time.Duration { return w.quantum }

// Stats returns (entries scheduled, slot events fired); their ratio is
// the coalescing factor.
func (w *TickWheel) Stats() (scheduled, fired uint64) { return w.scheduled, w.fired }

// Schedule implements Clock: fn runs at Now()+d rounded up to the next
// slot boundary. The returned Timer cancels through a shared flag (the
// slot event is not removed — it may carry other entries — the entry is
// skipped at fire time).
func (w *TickWheel) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	now := w.clock.Now()
	at := now + d
	idx := int64((at + w.quantum - 1) / w.quantum)
	s, ok := w.slots[idx]
	if !ok {
		if w.spare != nil {
			s, w.spare = w.spare, nil
		} else {
			s = &wheelSlot{}
		}
		s.wheel, s.idx, s.live = w, idx, 0
		w.slots[idx] = s
		s.timer = w.clock.Schedule(time.Duration(idx)*w.quantum-now, func() { w.fire(idx) })
	}
	e := &wheelEntry{fn: fn, slot: s}
	s.entries = append(s.entries, e)
	s.live++
	w.scheduled++
	return Timer{cancel: &e.cancel, wentry: e}
}

// fire runs every live entry of one slot in Schedule order. The slot is
// detached first so callbacks that re-arm (periodic ticks) land in a
// fresh future slot rather than the one being drained.
func (w *TickWheel) fire(idx int64) {
	s := w.slots[idx]
	delete(w.slots, idx)
	s.wheel = nil
	w.fired++
	for i, e := range s.entries {
		s.entries[i] = nil
		if e.cancel.CompareAndSwap(timerPending, timerFired) {
			e.fn()
		}
	}
	s.entries = s.entries[:0]
	w.spare = s
}

// Pending returns the number of live (unfired, unstopped) entries, for
// lifecycle audits.
func (w *TickWheel) Pending() int {
	n := 0
	for _, s := range w.slots {
		for _, e := range s.entries {
			if e.cancel.Load() == timerPending {
				n++
			}
		}
	}
	return n
}
