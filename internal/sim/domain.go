package sim

import (
	"sync"
	"sync/atomic"
	"time"
)

// Cross-domain timer states (Timer.cancel). A cross-domain send cannot
// be removed from the destination heap by the sender (that heap belongs
// to another worker), so cancellation is lazy: Stop flips the flag and
// the destination drops the message at delivery time, or at fire time
// if it was already materialized. Exactly one side wins the CAS, so the
// event is recycled exactly once, by its owning domain.
const (
	timerPending = iota
	timerStopped
	timerFired
)

// maxTime is the "no event / no constraint" sentinel for horizon math.
const maxTime = time.Duration(1<<63 - 1)

// fnvPrime folds the per-domain schedule digest (FNV-1a style over the
// fired-event keys). The digest is order-sensitive, so two runs match
// only if every domain fired the same events in the same order.
const (
	fnvOffset uint64 = 0xcbf29ce484222325
	fnvPrime  uint64 = 0x100000001b3
)

// DomainStats is one domain's event-lifecycle counter snapshot.
type DomainStats struct {
	ID    int32
	Label string
	// Scheduled counts local Schedule calls; Sent counts cross-domain
	// sends originated here; Delivered counts cross-domain messages
	// materialized into this domain's queue.
	Scheduled, Sent, Delivered uint64
	// Fired, Cancelled, Recycled track the event lifecycle. Every
	// allocated event is eventually recycled exactly once.
	Fired, Cancelled, Recycled uint64
	// Stalls counts execution windows where this domain had work within
	// the run window but its conservative horizon did not yet cover it.
	// Scheduler-dependent (diagnostic only, not part of the parity
	// contract).
	Stalls uint64
	// Trains counts flushed message trains; TrainMsgs counts the typed
	// messages they carried. TrainMsgs/Trains is the batching factor the
	// train layer achieves.
	Trains, TrainMsgs uint64
}

// xmsg is a timestamped cross-domain message: "run fn in the receiving
// domain at virtual time at". (dom, seq) is the sender's unique key,
// which slots the message into the deterministic global merge order
// (at, dom, seq) no matter when the channel delivery happens.
type xmsg struct {
	at     time.Duration
	dom    int32
	seq    uint64
	fn     func()
	cancel *atomic.Uint32
}

// Domain is one sequential event timeline: a per-physical-node (or
// control) event queue carrying its own virtual clock, sequence
// counter, RNG stream, and free list. All code running inside a domain
// is single-threaded with respect to that domain, exactly as all code
// was single-threaded under the old global Loop. The only concurrent
// surface is the inbox, which other domains append to under inMu.
//
// A Domain implements Clock, so sched.CPU, the routing protocols, and
// the traffic tools take a domain-scoped handle without API changes.
type Domain struct {
	id    int32
	label string
	exec  *Executor

	now  time.Duration
	seq  uint64
	heap []*event // 4-ary min-heap ordered by (at, dom, seq)
	free *event   // recycled event structs
	rng  *RNG

	// digest folds the key of every fired event, in fire order.
	digest uint64
	stats  DomainStats

	// remote marks a replica domain in a sharded run: another shard owns
	// and executes this domain's timeline. The local copy exists so
	// replicated world construction and control-domain code hold
	// identical references, but it never materializes or fires events —
	// Schedule is inert, its inbox is drained onto the wire at exchange
	// barriers, and the executor never enqueues it.
	remote bool

	// lookIn is the minimum latency of any cross-domain edge into this
	// domain (the conservative lookahead); maxTime when nothing sends
	// here.
	lookIn time.Duration

	// ins are the registered per-pair inbound edges (adaptive horizon);
	// edged is set once any edge is registered, switching horizon math
	// from the coarse all-pairs lookIn to the edge list. outs are the
	// domains this one has registered edges into — the executor wakes
	// them when this domain's published bound rises.
	ins   []inEdge
	outs  []*Domain
	edged bool

	// pub is the domain's published execution bound (nanoseconds): a
	// monotone promise that no event with an earlier timestamp will ever
	// run here within the current Run window. Receivers read it to widen
	// their horizons (pub + edge delay bounds this domain's influence).
	// Written by the owning worker after each window (flush-then-publish
	// order), reset by the coordinator at Run entry.
	pub atomic.Int64

	// state is the scheduler state machine (stateIdle/Queued/Running/
	// RunningDirty) that keeps a domain on at most one work queue.
	state atomic.Int32

	// trains accumulate outbound typed messages per destination domain;
	// dirtyTrains lists those with pending messages; flushed is the
	// wake-up scratch list the last flushTrains call populated. sentTo
	// collects destinations of closure-based SendTo calls made during
	// the current window so the executor can wake them too.
	trains      []*train
	dirtyTrains []*train
	flushed     []*Domain
	sentTo      []*Domain

	// inbox collects closure-based cross-domain messages (SendTo) and
	// tin the typed train messages (Send) between windows. inboxMin
	// caches the earliest timestamp across both so horizon checks don't
	// scan; it is atomic because next() reads it from the owning worker
	// while senders update it under inMu. spare/tspare are drained
	// buffers kept for reuse.
	inMu     sync.Mutex
	inbox    []xmsg
	tin      []tmsg
	inboxMin atomic.Int64
	spare    []xmsg
	tspare   []tmsg
}

// ID returns the domain's executor-assigned id (0 is the control
// domain). Ids order the deterministic merge: at equal timestamps,
// lower ids run first.
func (d *Domain) ID() int32 { return d.id }

// Label returns the name given at NewDomain time ("control" for the
// control domain).
func (d *Domain) Label() string { return d.label }

// Now returns the domain's current virtual time.
func (d *Domain) Now() time.Duration { return d.now }

// Remote reports whether this domain is an inert replica whose timeline
// executes on another shard (always false outside sharded runs).
func (d *Domain) Remote() bool { return d.remote }

// RNG returns the domain's deterministic random stream. Each domain
// forks its own stream at creation, so draws in one domain never
// perturb another's sequence regardless of execution interleaving.
func (d *Domain) RNG() *RNG { return d.rng }

// Stats returns a snapshot of the domain's counters.
func (d *Domain) Stats() DomainStats {
	s := d.stats
	s.ID, s.Label = d.id, d.label
	return s
}

// ScheduleDigest returns the domain's fired-event digest.
func (d *Domain) ScheduleDigest() uint64 { return d.digest }

// Lookahead returns the domain's conservative inbound lookahead — the
// minimum latency of any cross-domain edge into it (maxTime when
// nothing sends here). Telemetry surfaces it next to the stall counts:
// a small lookahead is why a domain's horizon advances slowly.
func (d *Domain) Lookahead() time.Duration { return d.lookIn }

// ObserveInboundLatency lowers the domain's conservative lookahead to
// lat if smaller. netem calls this once per inbound cross-domain link;
// a zero latency forces the executor's sequential fallback, which stays
// correct (and deterministic) but does not scale.
func (d *Domain) ObserveInboundLatency(lat time.Duration) {
	if lat < 0 {
		lat = 0
	}
	if lat < d.lookIn {
		d.lookIn = lat
	}
}

// Schedule implements Clock: fn runs in this domain at Now()+delay.
// It must only be called from code executing inside this domain (or at
// a barrier: driver code between Run calls, or control-domain events).
func (d *Domain) Schedule(delay time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	if d.remote {
		// Replica of a domain owned by another shard: the owner's
		// replicated copy of the calling code schedules the authentic
		// event. A zero Timer is inert (Stop and Pending are no-ops).
		return Timer{}
	}
	if delay < 0 {
		delay = 0
	}
	d.seq++
	d.stats.Scheduled++
	ev := d.alloc()
	ev.at = d.now + delay
	ev.dom = d.id
	ev.seq = d.seq
	ev.fn = fn
	d.push(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// SendTo arranges for fn to run in dst at this domain's Now()+delay.
// Same-domain sends degenerate to Schedule — identical cost and
// ordering to the pre-domain loop. Cross-domain sends become
// timestamped mailbox messages keyed by (at, sender id, sender seq), so
// the destination merges them into exactly the slot a shared heap would
// have used. The returned Timer stops either kind.
func (d *Domain) SendTo(dst *Domain, delay time.Duration, fn func()) Timer {
	if dst == d {
		return d.Schedule(delay, fn)
	}
	if fn == nil {
		panic("sim: SendTo with nil fn")
	}
	if d.remote {
		// Replicated driver-time code runs on every shard; only the
		// shard owning the calling domain materializes its sends (and a
		// closure could not cross the process boundary anyway).
		return Timer{}
	}
	if delay < 0 {
		delay = 0
	}
	d.seq++
	d.stats.Sent++
	cancel := new(atomic.Uint32)
	m := xmsg{at: d.now + delay, dom: d.id, seq: d.seq, fn: fn, cancel: cancel}
	dst.inMu.Lock()
	dst.inbox = append(dst.inbox, m)
	if int64(m.at) < dst.inboxMin.Load() {
		dst.inboxMin.Store(int64(m.at))
	}
	dst.inMu.Unlock()
	noted := false
	for _, s := range d.sentTo {
		if s == dst {
			noted = true
			break
		}
	}
	if !noted {
		d.sentTo = append(d.sentTo, dst)
	}
	return Timer{cancel: cancel}
}

// drainInbox materializes queued cross-domain messages (closure-based
// and typed) into the heap. Called by the owning worker at the start of
// each execution window, or by the coordinator at a barrier. Heap keys
// are globally unique and totally ordered, so the append order of the
// inbox — the one thing thread interleaving can vary — is semantically
// invisible.
func (d *Domain) drainInbox() {
	d.inMu.Lock()
	if len(d.inbox) == 0 && len(d.tin) == 0 {
		d.inMu.Unlock()
		return
	}
	msgs := d.inbox
	tmsgs := d.tin
	d.inbox = d.spare[:0]
	d.tin = d.tspare[:0]
	d.inboxMin.Store(int64(maxTime))
	d.inMu.Unlock()
	for i := range msgs {
		m := &msgs[i]
		if m.cancel.Load() == timerStopped {
			// Stopped before delivery: never materialized, nothing to
			// recycle.
			d.stats.Cancelled++
		} else {
			ev := d.alloc()
			ev.at, ev.dom, ev.seq = m.at, m.dom, m.seq
			ev.fn, ev.cancel = m.fn, m.cancel
			d.push(ev)
			d.stats.Delivered++
		}
		m.fn, m.cancel = nil, nil
	}
	d.spare = msgs[:0]
	for i := range tmsgs {
		m := &tmsgs[i]
		ev := d.alloc()
		ev.at, ev.dom, ev.seq = m.at, m.dom, m.seq
		ev.h, ev.arg = m.h, m.arg
		d.push(ev)
		d.stats.Delivered++
		m.h, m.arg = nil, nil
	}
	d.tspare = tmsgs[:0]
}

// next returns the earliest timestamp of any pending work (heap or
// undelivered inbox), or maxTime when idle. Barrier-context only.
func (d *Domain) next() time.Duration {
	n := maxTime
	if len(d.heap) > 0 {
		n = d.heap[0].at
	}
	if m := time.Duration(d.inboxMin.Load()); m < n {
		n = m
	}
	return n
}

// step runs the single earliest event. It reports false when the queue
// is empty. Lazily-cancelled cross-domain events are recycled without
// firing (and still report true: the queue made progress).
func (d *Domain) step() bool {
	if len(d.heap) == 0 {
		return false
	}
	ev := d.pop()
	if ev.at > d.now {
		d.now = ev.at
	}
	fn := ev.fn
	th, targ := ev.h, ev.arg
	cancelled := ev.cancel != nil && !ev.cancel.CompareAndSwap(timerPending, timerFired)
	if !cancelled {
		// Fold the fired event's merge key before the struct recycles.
		h := d.digest
		h = (h ^ uint64(ev.at)) * fnvPrime
		h = (h ^ uint64(uint32(ev.dom))) * fnvPrime
		h = (h ^ ev.seq) * fnvPrime
		d.digest = h
	}
	// Recycle before running so a Stop on the firing timer is a no-op
	// and the struct is immediately reusable by fn's own Schedule calls.
	d.recycle(ev)
	if cancelled {
		d.stats.Cancelled++
		return true
	}
	d.stats.Fired++
	if th != nil {
		th.Invoke(targ)
	} else {
		fn()
	}
	return true
}

// runTo is the worker-side window body: run every event at or before
// the inclusive horizon h. Nothing outside this domain is touched
// except via Send/SendTo (train buffers and inboxes), so domains in one
// window race on nothing.
func (d *Domain) runTo(h time.Duration) bool {
	ran := false
	stop := &d.exec.stopped
	for len(d.heap) > 0 && d.heap[0].at <= h {
		if stop.Load() {
			return ran
		}
		d.step()
		ran = true
	}
	return ran
}

// pubTime reads the domain's published execution bound.
func (d *Domain) pubTime() time.Duration { return time.Duration(d.pub.Load()) }

// alloc takes an event struct from the free list, or makes one.
func (d *Domain) alloc() *event {
	if ev := d.free; ev != nil {
		d.free = ev.next
		ev.next = nil
		return ev
	}
	return &event{owner: d}
}

// recycle invalidates outstanding Timers for ev and returns it to the
// free list. The callback reference is dropped here, not at pop time.
func (d *Domain) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.h, ev.arg = nil, nil
	ev.cancel = nil
	ev.next = d.free
	d.free = ev
	d.stats.Recycled++
}

// less orders events by the deterministic merge key (time, origin
// domain, origin sequence). With a single domain this degenerates to
// the classic (time, sequence) order.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.dom != b.dom {
		return a.dom < b.dom
	}
	return a.seq < b.seq
}

// push inserts ev into the 4-ary heap.
func (d *Domain) push(ev *event) {
	ev.idx = len(d.heap)
	d.heap = append(d.heap, ev)
	d.siftUp(ev.idx)
}

// pop removes and returns the earliest event. The heap must be non-empty.
func (d *Domain) pop() *event {
	h := d.heap
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[0].idx = 0
	h[n] = nil
	d.heap = h[:n]
	if n > 0 {
		d.siftDown(0)
	}
	return ev
}

// remove deletes ev from the heap (timer cancellation) and recycles it.
func (d *Domain) remove(ev *event) {
	h := d.heap
	i := ev.idx
	n := len(h) - 1
	if i != n {
		h[i] = h[n]
		h[i].idx = i
	}
	h[n] = nil
	d.heap = h[:n]
	if i != n {
		d.siftDown(i)
		d.siftUp(i)
	}
	d.stats.Cancelled++
	d.recycle(ev)
}

func (d *Domain) siftUp(i int) {
	h := d.heap
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !less(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].idx = i
		i = parent
	}
	h[i] = ev
	ev.idx = i
}

func (d *Domain) siftDown(i int) {
	h := d.heap
	n := len(h)
	ev := h[i]
	for {
		min := -1
		first := 4*i + 1
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if min < 0 || less(h[c], h[min]) {
				min = c
			}
		}
		if min < 0 || !less(h[min], ev) {
			break
		}
		h[i] = h[min]
		h[i].idx = i
		i = min
	}
	h[i] = ev
	ev.idx = i
}
