package bgp

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"vini/internal/sim"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

// duplexPipe reliably delivers messages between two speakers with delay.
type duplexPipe struct {
	loop         *sim.Loop
	delay        time.Duration
	down         bool
	aName, bName string
	a, b         *Speaker
}

type pipeEnd struct {
	p   *duplexPipe
	toB bool
}

func (e *pipeEnd) Send(msg []byte) {
	buf := append([]byte(nil), msg...)
	e.p.loop.Schedule(e.p.delay, func() {
		if e.p.down {
			return
		}
		if e.toB {
			e.p.b.Deliver(e.p.aName, buf)
		} else {
			e.p.a.Deliver(e.p.bName, buf)
		}
	})
}

// connect wires a<->b and returns the pipe for failure injection.
// aName is what b calls a, and vice versa.
func connect(loop *sim.Loop, a, b *Speaker, aName, bName string, aCfg, bCfg PeerConfig, delay time.Duration) *duplexPipe {
	p := &duplexPipe{loop: loop, delay: delay, aName: aName, bName: bName, a: a, b: b}
	aCfg.Name = bName
	bCfg.Name = aName
	a.AddPeer(aCfg, &pipeEnd{p: p, toB: true})
	b.AddPeer(bCfg, &pipeEnd{p: p, toB: false})
	return p
}

func TestSessionEstablishAndAnnounce(t *testing.T) {
	loop := sim.NewLoop(1)
	a := NewSpeaker(loop, Config{ASN: 64600, RouterID: 1, NextHopSelf: ip("198.32.154.1"), HoldTime: 30 * time.Second})
	b := NewSpeaker(loop, Config{ASN: 64601, RouterID: 2, NextHopSelf: ip("198.32.154.2"), HoldTime: 30 * time.Second})
	connect(loop, a, b, "a", "b", PeerConfig{EBGP: true}, PeerConfig{EBGP: true}, 10*time.Millisecond)
	a.Originate(pfx("198.32.154.0/24"), PathAttrs{})
	loop.Run(time.Second)
	if a.PeerState("b") != "Established" || b.PeerState("a") != "Established" {
		t.Fatalf("states: a->b=%s b->a=%s", a.PeerState("b"), b.PeerState("a"))
	}
	rib := b.LocRIB()
	if len(rib) != 1 || rib[0].Prefix != pfx("198.32.154.0/24") {
		t.Fatalf("b rib = %+v", rib)
	}
	if len(rib[0].Attrs.ASPath) != 1 || rib[0].Attrs.ASPath[0] != 64600 {
		t.Fatalf("AS path = %v", rib[0].Attrs.ASPath)
	}
	if rib[0].Attrs.NextHop != ip("198.32.154.1") {
		t.Fatalf("next hop = %v", rib[0].Attrs.NextHop)
	}
}

func TestWithdrawPropagates(t *testing.T) {
	loop := sim.NewLoop(1)
	a := NewSpeaker(loop, Config{ASN: 1, RouterID: 1, HoldTime: 30 * time.Second})
	b := NewSpeaker(loop, Config{ASN: 2, RouterID: 2, HoldTime: 30 * time.Second})
	connect(loop, a, b, "a", "b", PeerConfig{EBGP: true}, PeerConfig{EBGP: true}, time.Millisecond)
	a.Originate(pfx("10.1.0.0/16"), PathAttrs{})
	loop.Run(time.Second)
	if len(b.LocRIB()) != 1 {
		t.Fatal("announce missing")
	}
	a.Withdraw(pfx("10.1.0.0/16"))
	loop.Run(2 * time.Second)
	if len(b.LocRIB()) != 0 {
		t.Fatalf("withdraw not propagated: %+v", b.LocRIB())
	}
}

func TestTransitAndLoopPrevention(t *testing.T) {
	loop := sim.NewLoop(1)
	a := NewSpeaker(loop, Config{ASN: 1, RouterID: 1, HoldTime: 30 * time.Second})
	b := NewSpeaker(loop, Config{ASN: 2, RouterID: 2, HoldTime: 30 * time.Second})
	c := NewSpeaker(loop, Config{ASN: 3, RouterID: 3, HoldTime: 30 * time.Second})
	connect(loop, a, b, "a", "b", PeerConfig{EBGP: true}, PeerConfig{EBGP: true}, time.Millisecond)
	connect(loop, b, c, "b", "c", PeerConfig{EBGP: true}, PeerConfig{EBGP: true}, time.Millisecond)
	connect(loop, c, a, "c", "a", PeerConfig{EBGP: true}, PeerConfig{EBGP: true}, time.Millisecond)
	a.Originate(pfx("10.1.0.0/16"), PathAttrs{})
	loop.Run(2 * time.Second)
	// c hears the route directly from a (path length 1) and via b (2);
	// the decision process must pick the direct path.
	rib := c.LocRIB()
	if len(rib) != 1 {
		t.Fatalf("c rib = %+v", rib)
	}
	if len(rib[0].Attrs.ASPath) != 1 {
		t.Fatalf("c chose path %v, want the direct one", rib[0].Attrs.ASPath)
	}
	// a must not have accepted its own prefix back (loop detection).
	for _, r := range a.LocRIB() {
		if r.From != "" && r.Prefix == pfx("10.1.0.0/16") {
			t.Fatal("a accepted a looped route")
		}
	}
}

func TestLocalPrefOverridesPathLength(t *testing.T) {
	loop := sim.NewLoop(1)
	a := NewSpeaker(loop, Config{ASN: 1, RouterID: 1, HoldTime: 30 * time.Second})
	b := NewSpeaker(loop, Config{ASN: 2, RouterID: 2, HoldTime: 30 * time.Second})
	c := NewSpeaker(loop, Config{ASN: 3, RouterID: 3, HoldTime: 30 * time.Second})
	d := NewSpeaker(loop, Config{ASN: 4, RouterID: 4, HoldTime: 30 * time.Second})
	// d hears 10.1/16 from a directly (short path, default pref) and via
	// b->c (long path) with ImportPref boosting the c session.
	connect(loop, a, d, "a", "d", PeerConfig{EBGP: true}, PeerConfig{EBGP: true}, time.Millisecond)
	connect(loop, a, b, "a", "b", PeerConfig{EBGP: true}, PeerConfig{EBGP: true}, time.Millisecond)
	connect(loop, b, c, "b", "c", PeerConfig{EBGP: true}, PeerConfig{EBGP: true}, time.Millisecond)
	connect(loop, c, d, "c", "d", PeerConfig{EBGP: true}, PeerConfig{EBGP: true, ImportPref: 200}, time.Millisecond)
	a.Originate(pfx("10.1.0.0/16"), PathAttrs{})
	loop.Run(2 * time.Second)
	rib := d.LocRIB()
	if len(rib) != 1 {
		t.Fatalf("d rib = %+v", rib)
	}
	if rib[0].From != "c" {
		t.Fatalf("d picked %q, want the high-LocalPref path via c (path %v)",
			rib[0].From, rib[0].Attrs.ASPath)
	}
}

func TestHoldTimerExpiryWithdrawsRoutes(t *testing.T) {
	loop := sim.NewLoop(1)
	a := NewSpeaker(loop, Config{ASN: 1, RouterID: 1, HoldTime: 9 * time.Second})
	b := NewSpeaker(loop, Config{ASN: 2, RouterID: 2, HoldTime: 9 * time.Second})
	pipe := connect(loop, a, b, "a", "b", PeerConfig{EBGP: true}, PeerConfig{EBGP: true}, time.Millisecond)
	a.Originate(pfx("10.1.0.0/16"), PathAttrs{})
	loop.Run(time.Second)
	if len(b.LocRIB()) != 1 {
		t.Fatal("setup failed")
	}
	pipe.down = true
	loop.Run(30 * time.Second)
	if b.PeerState("a") == "Established" {
		t.Fatal("session survived silent peer")
	}
	if len(b.LocRIB()) != 0 {
		t.Fatalf("routes survived session death: %+v", b.LocRIB())
	}
}

func TestExportFilter(t *testing.T) {
	loop := sim.NewLoop(1)
	a := NewSpeaker(loop, Config{ASN: 1, RouterID: 1, HoldTime: 30 * time.Second})
	b := NewSpeaker(loop, Config{ASN: 2, RouterID: 2, HoldTime: 30 * time.Second})
	noExport := func(p netip.Prefix, _ PathAttrs) bool { return p != pfx("10.99.0.0/16") }
	connect(loop, a, b, "a", "b", PeerConfig{EBGP: true, ExportFilter: noExport}, PeerConfig{EBGP: true}, time.Millisecond)
	a.Originate(pfx("10.1.0.0/16"), PathAttrs{})
	a.Originate(pfx("10.99.0.0/16"), PathAttrs{})
	loop.Run(time.Second)
	rib := b.LocRIB()
	if len(rib) != 1 || rib[0].Prefix != pfx("10.1.0.0/16") {
		t.Fatalf("filter leaked: %+v", rib)
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	f := func(a, b, c, d byte, bits8 uint8, asns []uint32, lp, med uint32) bool {
		if len(asns) > 20 {
			asns = asns[:20]
		}
		u := Update{
			Withdrawn: []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{a, b, c, d}), int(bits8)%33)},
			Attrs: PathAttrs{ASPath: asns, NextHop: ip("192.0.2.1"),
				LocalPref: lp, MED: med},
			NLRI: []netip.Prefix{pfx("10.0.0.0/8")},
		}
		typ, body, err := ParseType(MarshalUpdate(u))
		if err != nil || typ != MsgUpdate {
			return false
		}
		got, err := ParseUpdate(body)
		if err != nil {
			return false
		}
		if len(got.Withdrawn) != 1 || got.Withdrawn[0] != u.Withdrawn[0] {
			return false
		}
		if len(got.Attrs.ASPath) != len(asns) {
			return false
		}
		for i := range asns {
			if got.Attrs.ASPath[i] != asns[i] {
				return false
			}
		}
		return got.Attrs.LocalPref == lp && got.Attrs.MED == med &&
			len(got.NLRI) == 1 && got.NLRI[0] == pfx("10.0.0.0/8")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWireFuzzNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		if typ, body, err := ParseType(b); err == nil {
			switch typ {
			case MsgOpen:
				ParseOpen(body)
			case MsgUpdate:
				ParseUpdate(body)
			case MsgNotification:
				ParseNotification(body)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// --- multiplexer ---

func TestMuxOwnershipFilter(t *testing.T) {
	loop := sim.NewLoop(1)
	m := NewMux(loop, MuxConfig{ASN: 64600, RouterID: 99, NextHopSelf: ip("198.32.154.1")})
	if err := m.Register("expA", pfx("198.32.0.0/20"), 100, 100); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("expB", pfx("198.32.16.0/20"), 100, 100); err != nil {
		t.Fatal(err)
	}
	if err := m.Announce("expA", pfx("198.32.1.0/24"), PathAttrs{}); err != nil {
		t.Fatalf("own block rejected: %v", err)
	}
	if err := m.Announce("expA", pfx("198.32.17.0/24"), PathAttrs{}); err == nil {
		t.Fatal("expA announced expB's space")
	}
	if err := m.Announce("expA", pfx("0.0.0.0/0"), PathAttrs{}); err == nil {
		t.Fatal("default route hijack permitted")
	}
	if m.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", m.Rejected)
	}
	if err := m.Announce("ghost", pfx("198.32.1.0/24"), PathAttrs{}); err == nil {
		t.Fatal("unregistered experiment accepted")
	}
}

func TestMuxRateLimit(t *testing.T) {
	loop := sim.NewLoop(1)
	m := NewMux(loop, MuxConfig{ASN: 64600, RouterID: 99})
	m.Register("flapper", pfx("198.32.0.0/20"), 1, 3) // 1 update/s, burst 3
	okCount := 0
	for i := 0; i < 10; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{198, 32, byte(i), 0}), 24)
		if err := m.Announce("flapper", p, PathAttrs{}); err == nil {
			okCount++
		}
	}
	if okCount != 3 {
		t.Fatalf("burst allowed %d, want 3", okCount)
	}
	if m.RateDropped != 7 {
		t.Fatalf("rate dropped = %d", m.RateDropped)
	}
	// After 2 simulated seconds two more tokens accrue.
	loop.Run(2 * time.Second)
	if err := m.Announce("flapper", pfx("198.32.9.0/24"), PathAttrs{}); err != nil {
		t.Fatalf("token not refilled: %v", err)
	}
}

func TestMuxSharesOneExternalSession(t *testing.T) {
	loop := sim.NewLoop(1)
	m := NewMux(loop, MuxConfig{ASN: 64600, RouterID: 99, NextHopSelf: ip("198.32.154.1"), HoldTime: 30 * time.Second})
	external := NewSpeaker(loop, Config{ASN: 7018, RouterID: 1, NextHopSelf: ip("12.0.0.1"), HoldTime: 30 * time.Second})
	connect(loop, m.Speaker(), external, "vini-mux", "upstream",
		PeerConfig{EBGP: true}, PeerConfig{EBGP: true}, 5*time.Millisecond)
	m.Register("expA", pfx("198.32.0.0/20"), 10, 10)
	m.Register("expB", pfx("198.32.16.0/20"), 10, 10)
	external.Originate(pfx("12.0.0.0/8"), PathAttrs{})
	loop.Run(time.Second)
	if err := m.Announce("expA", pfx("198.32.1.0/24"), PathAttrs{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Announce("expB", pfx("198.32.17.0/24"), PathAttrs{}); err != nil {
		t.Fatal(err)
	}
	loop.Run(2 * time.Second)
	// The upstream sees both experiments' prefixes over ONE session,
	// all with the mux's AS in the path.
	rib := external.LocRIB()
	found := 0
	for _, r := range rib {
		if r.Prefix == pfx("198.32.1.0/24") || r.Prefix == pfx("198.32.17.0/24") {
			found++
			if len(r.Attrs.ASPath) == 0 || r.Attrs.ASPath[0] != 64600 {
				t.Fatalf("bad path %v", r.Attrs.ASPath)
			}
		}
	}
	if found != 2 {
		t.Fatalf("upstream saw %d of 2 experiment prefixes: %+v", found, rib)
	}
	// And both experiments can read the shared external view.
	ext := m.ExternalRoutes()
	if len(ext) != 1 || ext[0].Prefix != pfx("12.0.0.0/8") {
		t.Fatalf("external routes = %+v", ext)
	}
}
