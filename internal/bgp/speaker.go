package bgp

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"vini/internal/fib"
	"vini/internal/sim"
)

// Conn is a reliable, ordered byte-message channel to one peer (TCP in a
// live deployment, a delayed in-memory pipe in simulation).
type Conn interface {
	Send(msg []byte)
}

// PeerConfig describes one session.
type PeerConfig struct {
	Name string
	// EBGP marks an external session (AS path grows, next hop rewritten).
	EBGP bool
	// ExportFilter, when set, decides which locally-best routes are
	// announced to this peer; nil exports everything.
	ExportFilter func(p netip.Prefix, attrs PathAttrs) bool
	// ImportPref overrides LocalPref for routes learned from this peer.
	ImportPref uint32
}

// peer is session state.
type peer struct {
	cfg        PeerConfig
	conn       Conn
	state      string // Idle, OpenSent, Established
	remote     Open
	adjIn      map[netip.Prefix]PathAttrs
	advertised map[netip.Prefix]bool
	holdTimer  sim.Timer
	kaTimer    sim.Timer
}

// Route is a Loc-RIB entry with its source peer.
type Route struct {
	Prefix netip.Prefix
	Attrs  PathAttrs
	From   string // peer name; "" = locally originated
}

// Config describes a speaker.
type Config struct {
	ASN      uint32
	RouterID uint32
	// NextHopSelf is the address written into eBGP announcements.
	NextHopSelf netip.Addr
	// HoldTime defaults to 90s (keepalives at a third of that).
	HoldTime time.Duration
}

// Speaker is one BGP instance.
type Speaker struct {
	cfg   Config
	clock sim.Clock
	peers map[string]*peer
	// originated are local announcements (our slice's address block).
	originated map[netip.Prefix]PathAttrs
	locRIB     map[netip.Prefix]Route
	// onRoutes receives Loc-RIB changes (FEA hook).
	onRoutes func([]fib.Route)
	// onEvent reports session transitions for logs/tests.
	onEvent func(peer, event string)
}

// NewSpeaker creates a speaker.
func NewSpeaker(clock sim.Clock, cfg Config) *Speaker {
	if cfg.HoldTime <= 0 {
		cfg.HoldTime = 90 * time.Second
	}
	return &Speaker{
		cfg:        cfg,
		clock:      clock,
		peers:      make(map[string]*peer),
		originated: make(map[netip.Prefix]PathAttrs),
		locRIB:     make(map[netip.Prefix]Route),
	}
}

// OnRoutes installs the FEA hook.
func (s *Speaker) OnRoutes(fn func([]fib.Route)) { s.onRoutes = fn }

// OnEvent installs a session-event observer.
func (s *Speaker) OnEvent(fn func(peer, event string)) { s.onEvent = fn }

func (s *Speaker) event(p, e string) {
	if s.onEvent != nil {
		s.onEvent(p, e)
	}
}

// AddPeer registers a session and sends OPEN.
func (s *Speaker) AddPeer(cfg PeerConfig, conn Conn) error {
	if _, dup := s.peers[cfg.Name]; dup {
		return fmt.Errorf("bgp: duplicate peer %q", cfg.Name)
	}
	p := &peer{cfg: cfg, conn: conn, state: "OpenSent",
		adjIn: make(map[netip.Prefix]PathAttrs), advertised: make(map[netip.Prefix]bool)}
	s.peers[cfg.Name] = p
	conn.Send(MarshalOpen(Open{ASN: s.cfg.ASN, RouterID: s.cfg.RouterID,
		HoldTime: uint16(s.cfg.HoldTime / time.Second)}))
	return nil
}

// PeerState reports a session's state ("", "OpenSent", "Established").
func (s *Speaker) PeerState(name string) string {
	if p, ok := s.peers[name]; ok {
		return p.state
	}
	return ""
}

// Originate announces a locally owned prefix.
func (s *Speaker) Originate(p netip.Prefix, attrs PathAttrs) {
	if attrs.LocalPref == 0 {
		attrs.LocalPref = 100
	}
	s.originated[p.Masked()] = attrs
	s.decide()
}

// Withdraw removes a local announcement.
func (s *Speaker) Withdraw(p netip.Prefix) {
	delete(s.originated, p.Masked())
	s.decide()
}

// Deliver feeds an incoming message from the named peer.
func (s *Speaker) Deliver(peerName string, msg []byte) error {
	p, ok := s.peers[peerName]
	if !ok {
		return fmt.Errorf("bgp: message from unknown peer %q", peerName)
	}
	typ, body, err := ParseType(msg)
	if err != nil {
		return err
	}
	switch typ {
	case MsgOpen:
		o, err := ParseOpen(body)
		if err != nil {
			return err
		}
		p.remote = o
		if p.state == "OpenSent" {
			p.state = "Established"
			s.event(peerName, "established")
			p.conn.Send(MarshalKeepalive())
			s.resetHold(p, peerName)
			s.startKeepalives(p)
			s.advertiseAll(p)
		}
	case MsgKeepalive:
		s.resetHold(p, peerName)
	case MsgUpdate:
		s.resetHold(p, peerName)
		u, err := ParseUpdate(body)
		if err != nil {
			return err
		}
		s.handleUpdate(p, u)
	case MsgNotification:
		n, _ := ParseNotification(body)
		s.event(peerName, fmt.Sprintf("notification code %d", n.Code))
		s.sessionDown(peerName, p)
	default:
		return fmt.Errorf("bgp: unknown message type %d", typ)
	}
	return nil
}

func (s *Speaker) resetHold(p *peer, name string) {
	if !p.holdTimer.IsZero() {
		p.holdTimer.Stop()
	}
	hold := time.Duration(p.remote.HoldTime) * time.Second
	if hold <= 0 {
		hold = s.cfg.HoldTime
	}
	p.holdTimer = s.clock.Schedule(hold, func() {
		p.conn.Send(MarshalNotification(Notification{Code: NoteHoldExpired}))
		s.event(name, "hold expired")
		s.sessionDown(name, p)
	})
}

func (s *Speaker) startKeepalives(p *peer) {
	interval := s.cfg.HoldTime / 3
	var tick func()
	tick = func() {
		if p.state != "Established" {
			return
		}
		p.conn.Send(MarshalKeepalive())
		p.kaTimer = s.clock.Schedule(interval, tick)
	}
	p.kaTimer = s.clock.Schedule(interval, tick)
}

// sessionDown clears a failed session and withdraws its routes.
func (s *Speaker) sessionDown(name string, p *peer) {
	p.state = "Idle"
	if !p.holdTimer.IsZero() {
		p.holdTimer.Stop()
	}
	if !p.kaTimer.IsZero() {
		p.kaTimer.Stop()
	}
	p.adjIn = make(map[netip.Prefix]PathAttrs)
	p.advertised = make(map[netip.Prefix]bool)
	s.decide()
}

func (s *Speaker) handleUpdate(p *peer, u Update) {
	for _, w := range u.Withdrawn {
		delete(p.adjIn, w.Masked())
	}
	for _, n := range u.NLRI {
		attrs := u.Attrs
		// Loop detection: reject paths containing our AS.
		looped := false
		for _, a := range attrs.ASPath {
			if a == s.cfg.ASN {
				looped = true
				break
			}
		}
		if looped {
			continue
		}
		if p.cfg.ImportPref != 0 {
			attrs.LocalPref = p.cfg.ImportPref
		} else if attrs.LocalPref == 0 {
			attrs.LocalPref = 100
		}
		p.adjIn[n.Masked()] = attrs
	}
	s.decide()
}

// better implements the decision process: highest LocalPref, shortest AS
// path, lowest MED, eBGP over iBGP, lowest peer name for determinism.
func better(a, b Route) bool {
	if a.Attrs.LocalPref != b.Attrs.LocalPref {
		return a.Attrs.LocalPref > b.Attrs.LocalPref
	}
	if len(a.Attrs.ASPath) != len(b.Attrs.ASPath) {
		return len(a.Attrs.ASPath) < len(b.Attrs.ASPath)
	}
	if a.Attrs.MED != b.Attrs.MED {
		return a.Attrs.MED < b.Attrs.MED
	}
	if (a.From == "") != (b.From == "") {
		return a.From == "" // local origination wins
	}
	return a.From < b.From
}

// decide recomputes the Loc-RIB and propagates changes.
func (s *Speaker) decide() {
	newRIB := make(map[netip.Prefix]Route)
	consider := func(r Route) {
		cur, ok := newRIB[r.Prefix]
		if !ok || better(r, cur) {
			newRIB[r.Prefix] = r
		}
	}
	for p, attrs := range s.originated {
		consider(Route{Prefix: p, Attrs: attrs})
	}
	for name, pr := range s.peers {
		if pr.state != "Established" {
			continue
		}
		for p, attrs := range pr.adjIn {
			consider(Route{Prefix: p, Attrs: attrs, From: name})
		}
	}
	old := s.locRIB
	s.locRIB = newRIB
	// Export deltas to peers.
	for _, pr := range s.peers {
		if pr.state == "Established" {
			s.advertiseDelta(pr, old, newRIB)
		}
	}
	// FEA hook.
	if s.onRoutes != nil {
		var routes []fib.Route
		for p, r := range newRIB {
			if r.From == "" {
				continue // local blocks are connected, not BGP routes
			}
			routes = append(routes, fib.Route{Prefix: p, NextHop: r.Attrs.NextHop,
				Metric: uint32(len(r.Attrs.ASPath))})
		}
		sort.Slice(routes, func(i, j int) bool {
			return routes[i].Prefix.String() < routes[j].Prefix.String()
		})
		s.onRoutes(routes)
	}
}

// exportable applies peer policy plus the iBGP rule (routes learned from
// an iBGP peer are not re-advertised to other iBGP peers).
func (s *Speaker) exportable(pr *peer, r Route) bool {
	if r.From == pr.cfg.Name {
		return false // split horizon
	}
	if r.From != "" && !s.peers[r.From].cfg.EBGP && !pr.cfg.EBGP {
		return false // iBGP reflection requires a route reflector
	}
	if pr.cfg.ExportFilter != nil && !pr.cfg.ExportFilter(r.Prefix, r.Attrs) {
		return false
	}
	return true
}

func (s *Speaker) exportAttrs(pr *peer, r Route) PathAttrs {
	attrs := r.Attrs
	if pr.cfg.EBGP {
		attrs.ASPath = append([]uint32{s.cfg.ASN}, attrs.ASPath...)
		if s.cfg.NextHopSelf.IsValid() {
			attrs.NextHop = s.cfg.NextHopSelf
		}
		attrs.LocalPref = 0 // not propagated across AS boundaries
	}
	return attrs
}

func (s *Speaker) advertiseAll(pr *peer) {
	for _, r := range s.sortedRIB() {
		if !s.exportable(pr, r) {
			continue
		}
		pr.advertised[r.Prefix] = true
		pr.conn.Send(MarshalUpdate(Update{NLRI: []netip.Prefix{r.Prefix},
			Attrs: s.exportAttrs(pr, r)}))
	}
}

func (s *Speaker) advertiseDelta(pr *peer, old, new_ map[netip.Prefix]Route) {
	// Withdrawals: previously advertised, now gone or unexportable.
	for p := range pr.advertised {
		r, ok := new_[p]
		if ok && s.exportable(pr, r) {
			continue
		}
		delete(pr.advertised, p)
		pr.conn.Send(MarshalUpdate(Update{Withdrawn: []netip.Prefix{p}}))
	}
	// Announcements: new or changed best routes.
	for _, r := range sortRoutes(new_) {
		if !s.exportable(pr, r) {
			continue
		}
		if o, ok := old[r.Prefix]; ok && pr.advertised[r.Prefix] && samePath(o, r) {
			continue
		}
		pr.advertised[r.Prefix] = true
		pr.conn.Send(MarshalUpdate(Update{NLRI: []netip.Prefix{r.Prefix},
			Attrs: s.exportAttrs(pr, r)}))
	}
}

func samePath(a, b Route) bool {
	if a.From != b.From || a.Attrs.NextHop != b.Attrs.NextHop ||
		a.Attrs.LocalPref != b.Attrs.LocalPref || len(a.Attrs.ASPath) != len(b.Attrs.ASPath) {
		return false
	}
	for i := range a.Attrs.ASPath {
		if a.Attrs.ASPath[i] != b.Attrs.ASPath[i] {
			return false
		}
	}
	return true
}

func (s *Speaker) sortedRIB() []Route { return sortRoutes(s.locRIB) }

func sortRoutes(m map[netip.Prefix]Route) []Route {
	out := make([]Route, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Prefix.String() < out[j].Prefix.String()
	})
	return out
}

// LocRIB returns the current best routes, sorted.
func (s *Speaker) LocRIB() []Route { return s.sortedRIB() }
