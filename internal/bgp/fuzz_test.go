package bgp

import (
	"net/netip"
	"reflect"
	"testing"
)

// FuzzWireDecode throws arbitrary bytes at the BGP wire decoders. Two
// properties: no decoder may panic on any input (every length is
// attacker-controlled — the mux parses frames from experiment slices),
// and any message that decodes must survive a marshal/parse round trip
// unchanged, so the mux can re-originate what it accepted byte-exactly.
func FuzzWireDecode(f *testing.F) {
	f.Add(MarshalOpen(Open{ASN: 64512, RouterID: 0x0a000001, HoldTime: 90}))
	f.Add(MarshalKeepalive())
	f.Add(MarshalNotification(Notification{Code: NotePolicyReject}))
	f.Add(MarshalUpdate(Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.2.0.0/16")},
		Attrs: PathAttrs{
			ASPath:    []uint32{64512, 64513},
			NextHop:   netip.MustParseAddr("198.32.154.40"),
			LocalPref: 100,
			MED:       7,
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16"), netip.MustParsePrefix("10.3.3.0/24")},
	}))
	f.Add([]byte{0, 4, 0, MsgUpdate})
	f.Add([]byte{0, 9, 0, MsgUpdate, 0, 1, 33, 1, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, err := ParseType(data)
		if err != nil {
			return
		}
		switch typ {
		case MsgOpen:
			o, err := ParseOpen(body)
			if err != nil {
				return
			}
			roundTrip(t, MarshalOpen(o), func(b2 []byte) (any, error) { return ParseOpen(b2) }, o)
		case MsgUpdate:
			u, err := ParseUpdate(body)
			if err != nil {
				return
			}
			if len(u.Withdrawn)*5+len(u.Attrs.ASPath)*4+len(u.NLRI)*5+22 > 0xffff {
				// The 2-byte frame length cannot carry the re-encoding;
				// such a message cannot originate from MarshalUpdate.
				return
			}
			roundTrip(t, MarshalUpdate(u), func(b2 []byte) (any, error) { return ParseUpdate(b2) }, u)
		case MsgNotification:
			n, err := ParseNotification(body)
			if err != nil {
				return
			}
			roundTrip(t, MarshalNotification(n), func(b2 []byte) (any, error) { return ParseNotification(b2) }, n)
		}
	})
}

// roundTrip re-frames an accepted message and demands it decodes back to
// the identical value.
func roundTrip(t *testing.T, reenc []byte, parse func([]byte) (any, error), want any) {
	t.Helper()
	_, body, err := ParseType(reenc)
	if err != nil {
		t.Fatalf("re-encoded frame rejected: %v", err)
	}
	got, err := parse(body)
	if err != nil {
		t.Fatalf("re-encoded body rejected: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed message:\n got %+v\nwant %+v", got, want)
	}
}
