package bgp

import (
	"fmt"
	"net/netip"
	"time"

	"vini/internal/sim"
)

// Mux is the BGP multiplexer of Section 6.1: external networks will not
// maintain one session per experiment, so the mux terminates the single
// session with the neighboring domain and fans it out to per-experiment
// speakers. It enforces two safeguards the paper calls out:
//
//   - each experiment announces only prefixes inside its allocated slice
//     of VINI's address block (announcements outside it are dropped and
//     counted), and
//   - the rate of BGP updates an experiment may propagate upstream is
//     capped by a token bucket, so unstable experimental software cannot
//     destabilize the real Internet.
type Mux struct {
	speaker     *Speaker
	clock       sim.Clock
	experiments map[string]*muxExperiment
	// Rejected counts announcements dropped by the ownership filter.
	Rejected uint64
	// RateDropped counts updates dropped by rate limiting.
	RateDropped uint64
}

type muxExperiment struct {
	name   string
	block  netip.Prefix
	tokens float64
	rate   float64 // updates per second
	burst  float64
	last   time.Duration
}

// MuxConfig configures the shared external side.
type MuxConfig struct {
	// Speaker is the mux's own BGP instance holding the external
	// session(s); callers add the external peer to it directly.
	ASN         uint32
	RouterID    uint32
	NextHopSelf netip.Addr
	HoldTime    time.Duration
}

// NewMux creates a multiplexer.
func NewMux(clock sim.Clock, cfg MuxConfig) *Mux {
	return &Mux{
		speaker: NewSpeaker(clock, Config{ASN: cfg.ASN, RouterID: cfg.RouterID,
			NextHopSelf: cfg.NextHopSelf, HoldTime: cfg.HoldTime}),
		clock:       clock,
		experiments: make(map[string]*muxExperiment),
	}
}

// Speaker exposes the mux's external-facing BGP instance so the single
// upstream adjacency can be attached (AddPeer with EBGP: true).
func (m *Mux) Speaker() *Speaker { return m.speaker }

// Register admits an experiment with its allocated address block and an
// update rate limit (updates/second with the given burst).
func (m *Mux) Register(name string, block netip.Prefix, rate, burst float64) error {
	if _, dup := m.experiments[name]; dup {
		return fmt.Errorf("bgp: experiment %q already registered", name)
	}
	if rate <= 0 {
		rate = 1
	}
	if burst <= 0 {
		burst = 5
	}
	m.experiments[name] = &muxExperiment{
		name: name, block: block.Masked(), rate: rate, burst: burst,
		tokens: burst, last: m.clock.Now(),
	}
	return nil
}

// Announce propagates an experiment's announcement upstream if it passes
// the ownership filter and rate limit.
func (m *Mux) Announce(experiment string, p netip.Prefix, attrs PathAttrs) error {
	e, ok := m.experiments[experiment]
	if !ok {
		return fmt.Errorf("bgp: unknown experiment %q", experiment)
	}
	if !prefixWithin(e.block, p) {
		m.Rejected++
		return fmt.Errorf("bgp: %s may not announce %v (allocated %v)", experiment, p, e.block)
	}
	if !e.takeToken(m.clock.Now()) {
		m.RateDropped++
		return fmt.Errorf("bgp: %s exceeded its update rate", experiment)
	}
	m.speaker.Originate(p, attrs)
	return nil
}

// WithdrawAnnounced removes an experiment's prefix upstream (also rate
// limited: withdrawal storms are updates too).
func (m *Mux) WithdrawAnnounced(experiment string, p netip.Prefix) error {
	e, ok := m.experiments[experiment]
	if !ok {
		return fmt.Errorf("bgp: unknown experiment %q", experiment)
	}
	if !prefixWithin(e.block, p) {
		m.Rejected++
		return fmt.Errorf("bgp: %s does not own %v", experiment, p)
	}
	if !e.takeToken(m.clock.Now()) {
		m.RateDropped++
		return fmt.Errorf("bgp: %s exceeded its update rate", experiment)
	}
	m.speaker.Withdraw(p)
	return nil
}

// ExternalRoutes returns the routes learned from the shared external
// adjacency, which the mux redistributes to every experiment's routing
// table (the experiments see the full external view).
func (m *Mux) ExternalRoutes() []Route {
	var out []Route
	for _, r := range m.speaker.LocRIB() {
		if r.From != "" {
			out = append(out, r)
		}
	}
	return out
}

func (e *muxExperiment) takeToken(now time.Duration) bool {
	dt := (now - e.last).Seconds()
	e.last = now
	e.tokens += dt * e.rate
	if e.tokens > e.burst {
		e.tokens = e.burst
	}
	if e.tokens < 1 {
		return false
	}
	e.tokens--
	return true
}

// prefixWithin reports whether p is equal to or a subnet of block.
func prefixWithin(block, p netip.Prefix) bool {
	return p.Bits() >= block.Bits() && block.Contains(p.Addr())
}
