// Package bgp implements the BGP speaker IIAS experiments use to exchange
// reachability with neighboring domains, and the BGP multiplexer of
// Section 6.1 that lets many experiments share a single routing
// adjacency with an external network: the mux owns the one external
// session, ensures each experiment announces only its own address space,
// and rate-limits the update stream each experiment may send upstream.
package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Message types.
const (
	MsgOpen         = 1
	MsgUpdate       = 2
	MsgNotification = 3
	MsgKeepalive    = 4
)

// Open announces speaker identity when a session starts.
type Open struct {
	ASN      uint32
	RouterID uint32
	HoldTime uint16 // seconds
}

// PathAttrs carries the attributes of an announcement.
type PathAttrs struct {
	ASPath    []uint32
	NextHop   netip.Addr
	LocalPref uint32
	MED       uint32
}

// Update announces and withdraws prefixes.
type Update struct {
	Withdrawn []netip.Prefix
	Attrs     PathAttrs
	NLRI      []netip.Prefix
}

// Notification reports a fatal session error.
type Notification struct {
	Code uint8
}

// Notification codes.
const (
	NoteHoldExpired  = 4
	NoteCease        = 6
	NotePolicyReject = 7 // mux: announcement outside allocated block
)

// Marshal encodes a message with the 19-byte-style header (marker
// omitted; 3-byte length + type as in RFC 4271, simplified).
func marshal(typ byte, body []byte) []byte {
	out := make([]byte, 4+len(body))
	binary.BigEndian.PutUint16(out[0:2], uint16(len(out)))
	out[2] = 0 // reserved
	out[3] = typ
	copy(out[4:], body)
	return out
}

// ParseType splits a raw message into type and body.
func ParseType(b []byte) (byte, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("bgp: message too short")
	}
	l := int(binary.BigEndian.Uint16(b[0:2]))
	if l < 4 || l > len(b) {
		return 0, nil, fmt.Errorf("bgp: bad length %d", l)
	}
	return b[3], b[4:l], nil
}

// MarshalOpen encodes an OPEN.
func MarshalOpen(o Open) []byte {
	body := make([]byte, 10)
	binary.BigEndian.PutUint32(body[0:4], o.ASN)
	binary.BigEndian.PutUint32(body[4:8], o.RouterID)
	binary.BigEndian.PutUint16(body[8:10], o.HoldTime)
	return marshal(MsgOpen, body)
}

// ParseOpen decodes an OPEN body.
func ParseOpen(body []byte) (Open, error) {
	var o Open
	if len(body) < 10 {
		return o, fmt.Errorf("bgp: OPEN too short")
	}
	o.ASN = binary.BigEndian.Uint32(body[0:4])
	o.RouterID = binary.BigEndian.Uint32(body[4:8])
	o.HoldTime = binary.BigEndian.Uint16(body[8:10])
	return o, nil
}

// MarshalKeepalive encodes a KEEPALIVE.
func MarshalKeepalive() []byte { return marshal(MsgKeepalive, nil) }

// MarshalNotification encodes a NOTIFICATION.
func MarshalNotification(n Notification) []byte {
	return marshal(MsgNotification, []byte{n.Code})
}

// ParseNotification decodes a NOTIFICATION body.
func ParseNotification(body []byte) (Notification, error) {
	if len(body) < 1 {
		return Notification{}, fmt.Errorf("bgp: NOTIFICATION too short")
	}
	return Notification{Code: body[0]}, nil
}

func appendPrefix(out []byte, p netip.Prefix) []byte {
	a := p.Addr().As4()
	out = append(out, byte(p.Bits()))
	return append(out, a[:]...)
}

func parsePrefix(b []byte) (netip.Prefix, []byte, error) {
	if len(b) < 5 {
		return netip.Prefix{}, nil, fmt.Errorf("bgp: prefix truncated")
	}
	bits := int(b[0])
	if bits > 32 {
		return netip.Prefix{}, nil, fmt.Errorf("bgp: bad prefix bits %d", bits)
	}
	addr := netip.AddrFrom4([4]byte(b[1:5]))
	return netip.PrefixFrom(addr, bits), b[5:], nil
}

// MarshalUpdate encodes an UPDATE.
func MarshalUpdate(u Update) []byte {
	var body []byte
	body = binary.BigEndian.AppendUint16(body, uint16(len(u.Withdrawn)))
	for _, p := range u.Withdrawn {
		body = appendPrefix(body, p)
	}
	// Attributes.
	body = binary.BigEndian.AppendUint16(body, uint16(len(u.Attrs.ASPath)))
	for _, a := range u.Attrs.ASPath {
		body = binary.BigEndian.AppendUint32(body, a)
	}
	nh := u.Attrs.NextHop
	if !nh.IsValid() {
		nh = netip.AddrFrom4([4]byte{})
	}
	na := nh.As4()
	body = append(body, na[:]...)
	body = binary.BigEndian.AppendUint32(body, u.Attrs.LocalPref)
	body = binary.BigEndian.AppendUint32(body, u.Attrs.MED)
	// NLRI.
	body = binary.BigEndian.AppendUint16(body, uint16(len(u.NLRI)))
	for _, p := range u.NLRI {
		body = appendPrefix(body, p)
	}
	return marshal(MsgUpdate, body)
}

// ParseUpdate decodes an UPDATE body.
func ParseUpdate(body []byte) (Update, error) {
	var u Update
	if len(body) < 2 {
		return u, fmt.Errorf("bgp: UPDATE too short")
	}
	nw := int(binary.BigEndian.Uint16(body[0:2]))
	b := body[2:]
	var err error
	var p netip.Prefix
	for i := 0; i < nw; i++ {
		p, b, err = parsePrefix(b)
		if err != nil {
			return u, err
		}
		u.Withdrawn = append(u.Withdrawn, p)
	}
	if len(b) < 2 {
		return u, fmt.Errorf("bgp: UPDATE attrs truncated")
	}
	np := int(binary.BigEndian.Uint16(b[0:2]))
	b = b[2:]
	if len(b) < 4*np+12 {
		return u, fmt.Errorf("bgp: AS path truncated")
	}
	for i := 0; i < np; i++ {
		u.Attrs.ASPath = append(u.Attrs.ASPath, binary.BigEndian.Uint32(b[4*i:]))
	}
	b = b[4*np:]
	u.Attrs.NextHop = netip.AddrFrom4([4]byte(b[0:4]))
	u.Attrs.LocalPref = binary.BigEndian.Uint32(b[4:8])
	u.Attrs.MED = binary.BigEndian.Uint32(b[8:12])
	b = b[12:]
	if len(b) < 2 {
		return u, fmt.Errorf("bgp: NLRI count truncated")
	}
	nn := int(binary.BigEndian.Uint16(b[0:2]))
	b = b[2:]
	for i := 0; i < nn; i++ {
		p, b, err = parsePrefix(b)
		if err != nil {
			return u, err
		}
		u.NLRI = append(u.NLRI, p)
	}
	return u, nil
}
