package experiment

import (
	"fmt"
	"net/netip"
	"time"

	"vini/internal/bgp"
	"vini/internal/core"
	"vini/internal/netem"
	"vini/internal/sim"
	"vini/internal/topology"
	"vini/internal/traffic"
)

func mustA(s string) netip.Addr { return netip.MustParseAddr(s) }

func netemPlanetLabProfile() netem.Profile { return netem.PlanetLabProfile() }

// The ablations isolate the design choices DESIGN.md calls out: which
// of PL-VINI's two scheduler knobs buys what (Section 4.1.2), how the
// socket buffer sets Figure 6's loss knee, how per-packet cost scales
// with size (the Table 2 cost model), and what the Section 6.1 BGP
// multiplexer saves the external network.

// IsolationRow is one CPU-isolation configuration's outcome.
type IsolationRow struct {
	Name     string
	Mbps     float64
	PingMdev float64
	PingMax  float64
}

// planetlabSliceCustom embeds the 3-node overlay with explicit knobs.
func planetlabSliceCustom(v *core.VINI, share float64, rt bool) (*core.Slice, error) {
	s, err := v.CreateSlice(core.SliceConfig{Name: "iias", CPUShare: share, RT: rt})
	if err != nil {
		return nil, err
	}
	for _, n := range []string{topology.Chicago, topology.NewYork, topology.Washington} {
		if _, err := s.AddVirtualNode(n); err != nil {
			return nil, err
		}
	}
	if _, err := s.ConnectVirtual(topology.Chicago, topology.NewYork, 1); err != nil {
		return nil, err
	}
	if _, err := s.ConnectVirtual(topology.NewYork, topology.Washington, 1); err != nil {
		return nil, err
	}
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(v.Loop().Now() + 15*time.Second)
	return s, nil
}

// CPUIsolationAblation decomposes PL-VINI's gain over the default share
// into its two mechanisms: the 25% CPU reservation (capacity) and
// real-time priority (latency). The paper's Section 5.1.2 asserts the
// reservation buys throughput while the priority boost buys scheduling
// latency; the four rows verify each knob in isolation.
func CPUIsolationAblation(seed int64, duration time.Duration, pings int) ([]IsolationRow, error) {
	configs := []struct {
		name  string
		share float64
		rt    bool
	}{
		{"default share", 1.0 / 40, false},
		{"reservation only", 0.25, false},
		{"RT priority only", 1.0 / 40, true},
		{"reservation + RT (PL-VINI)", 0.25, true},
	}
	var out []IsolationRow
	for _, cfg := range configs {
		// Throughput leg.
		v, chi, was := planetlabNet(seed)
		s, err := planetlabSliceCustom(v, cfg.share, cfg.rt)
		if err != nil {
			return nil, err
		}
		a, _ := s.VirtualNode(topology.Chicago)
		b, _ := s.VirtualNode(topology.Washington)
		test, err := traffic.StartIperfTCP(v.Net, chi, was, traffic.IperfTCPConfig{
			Streams: 20, Window: 16 << 10, SrcAddr: a.TapAddr, DstAddr: b.TapAddr})
		if err != nil {
			return nil, err
		}
		v.Run(v.Loop().Now() + duration)
		test.Stop()
		row := IsolationRow{Name: cfg.name, Mbps: test.Mbps()}
		// Latency leg (fresh deployment so the iperf load does not skew it).
		v2, chi2, was2 := planetlabNet(seed + 1)
		s2, err := planetlabSliceCustom(v2, cfg.share, cfg.rt)
		if err != nil {
			return nil, err
		}
		a2, _ := s2.VirtualNode(topology.Chicago)
		b2, _ := s2.VirtualNode(topology.Washington)
		traffic.NewICMPHost(was2)
		h := traffic.NewICMPHost(chi2)
		p := h.StartPing(v2.Loop(), traffic.PingConfig{Src: a2.TapAddr, Dst: b2.TapAddr,
			Interval: 20 * time.Millisecond, Count: pings})
		v2.Run(v2.Loop().Now() + time.Duration(pings)*20*time.Millisecond + 5*time.Second)
		row.PingMdev = p.RTTs.Mdev()
		row.PingMax = p.RTTs.Max()
		out = append(out, row)
	}
	return out, nil
}

// BufferRow is one socket-buffer size's Figure-6 loss.
type BufferRow struct {
	BufferKB int
	LossPct  float64
}

// SocketBufferAblation sweeps the forwarder's UDP receive buffer at a
// fixed 45 Mb/s CBR under the default share: the buffer's time depth
// (bytes ÷ rate) against the scheduling-latency tail sets the Figure 6
// loss knee.
func SocketBufferAblation(seed int64, bufsKB []int, duration time.Duration) ([]BufferRow, error) {
	var out []BufferRow
	for i, kb := range bufsKB {
		prof := netemPlanetLabProfile()
		prof.SocketBuf = kb << 10
		v, chi, was := planetlabNetProf(seed+int64(i)*13, prof)
		s, err := planetlabSliceCustom(v, 1.0/40, false)
		if err != nil {
			return nil, err
		}
		a, _ := s.VirtualNode(topology.Chicago)
		b, _ := s.VirtualNode(topology.Washington)
		test, err := traffic.StartUDPCBR(v.Net, chi, was, traffic.UDPCBRConfig{
			RateBps: 45e6, SrcAddr: a.TapAddr, DstAddr: b.TapAddr})
		if err != nil {
			return nil, err
		}
		v.Run(v.Loop().Now() + duration)
		test.Stop()
		v.Run(v.Loop().Now() + 2*time.Second)
		out = append(out, BufferRow{BufferKB: kb, LossPct: 100 * test.LossRate()})
	}
	return out, nil
}

// PacketSizeRow is one payload size's forwarding capacity.
type PacketSizeRow struct {
	PayloadBytes int
	Mbps         float64
	KppsMeasured float64
}

// PacketSizeAblation measures the user-space forwarder's capacity as a
// function of packet size on dedicated hardware: small packets are
// syscall-bound (flat packets/s), large packets add per-byte copy cost —
// the two terms of the Table 2 cost model.
func PacketSizeAblation(seed int64, payloads []int, duration time.Duration) ([]PacketSizeRow, error) {
	var out []PacketSizeRow
	for i, size := range payloads {
		v, src, _, dst := deterNet(seed + int64(i)*7)
		s, err := deterIIAS(v)
		if err != nil {
			return nil, err
		}
		a, _ := s.VirtualNode("src")
		b, _ := s.VirtualNode("sink")
		// Offered load far above capacity so the forwarder saturates.
		test, err := traffic.StartUDPCBR(v.Net, src, dst, traffic.UDPCBRConfig{
			RateBps: 900e6, Payload: size, SrcAddr: a.TapAddr, DstAddr: b.TapAddr})
		if err != nil {
			return nil, err
		}
		start := v.Loop().Now()
		v.Run(start + duration)
		test.Stop()
		v.Run(v.Loop().Now() + time.Second)
		secs := duration.Seconds()
		mbps := float64(test.Received()) * float64(size+28) * 8 / secs / 1e6
		out = append(out, PacketSizeRow{
			PayloadBytes: size,
			Mbps:         mbps,
			KppsMeasured: float64(test.Received()) / secs / 1e3,
		})
	}
	return out, nil
}

// MuxRow compares external-session load with and without the mux.
type MuxRow struct {
	Experiments       int
	SessionsWithMux   int
	SessionsWithout   int
	RejectedHijacks   uint64
	RateLimitedFloods uint64
}

// BGPMuxAblation quantifies Section 6.1's argument: with N experiments,
// the external router maintains one session through the mux instead of
// N, and the mux absorbs hijacks and update floods before they reach
// the real Internet.
func BGPMuxAblation(nExperiments int) (MuxRow, error) {
	loop := sim.NewLoop(1)
	mux := bgp.NewMux(loop, bgp.MuxConfig{ASN: 64600, RouterID: 1,
		NextHopSelf: mustA("198.32.154.1"), HoldTime: 30 * time.Second})
	for i := 0; i < nExperiments; i++ {
		block := netip.PrefixFrom(netip.AddrFrom4([4]byte{198, 32, byte(i * 16), 0}), 20)
		if err := mux.Register(fmt.Sprintf("exp%d", i), block, 1, 2); err != nil {
			return MuxRow{}, err
		}
	}
	// Every experiment announces its block; one tries a hijack; one floods.
	for i := 0; i < nExperiments; i++ {
		block := netip.PrefixFrom(netip.AddrFrom4([4]byte{198, 32, byte(i * 16), 0}), 24)
		mux.Announce(fmt.Sprintf("exp%d", i), block, bgp.PathAttrs{})
	}
	mux.Announce("exp0", netip.MustParsePrefix("0.0.0.0/0"), bgp.PathAttrs{}) // hijack attempt
	for i := 0; i < 20; i++ {                                                 // update flood
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{198, 32, 1, 0}), 24)
		mux.Announce("exp0", p, bgp.PathAttrs{})
	}
	return MuxRow{
		Experiments:       nExperiments,
		SessionsWithMux:   1,
		SessionsWithout:   nExperiments,
		RejectedHijacks:   mux.Rejected,
		RateLimitedFloods: mux.RateDropped,
	}, nil
}
