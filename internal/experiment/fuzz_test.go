package experiment

import "testing"

// FuzzParseSpec throws arbitrary text at the experiment-specification
// parser, which must return a spec or an error — never panic. (This
// target originally surfaced index panics on bare "duration", "warmup",
// and "seed" directive lines.)
func FuzzParseSpec(f *testing.F) {
	f.Add(`# Abilene convergence experiment
topology abilene
slice iias reservation 0.25 rt
ospf hello 5s dead 10s
ping washington seattle interval 200ms
iperf-tcp washington seattle window 16384
udp-cbr washington seattle rate 10M
at 10s fail-virtual denver kansas-city
at 34s restore-virtual denver kansas-city
duration 50s
warmup 30s
seed 7
`)
	f.Add("topology line a b c\nrip update 10s\n")
	f.Add("topology star hub leaf1 leaf2\nslice s expose-failures\n")
	f.Add("duration")                // bare directives used to panic
	f.Add("warmup")
	f.Add("seed")
	f.Add("spare")
	f.Add("at 10s fail-virtual a")   // wrong arity
	f.Add("ping a")                  // missing dst
	f.Add("slice s share nope\n")
	f.Add("udp-cbr a b rate 10Q\n")
	// Migration action arity and argument malformations: each must
	// parse-error, never panic.
	f.Add("at 1s migrate")
	f.Add("at 1s migrate a")
	f.Add("at 1s migrate a b c")
	f.Add("at nonsense migrate a b")
	f.Add("topology line a b c\nspare c\nat 5s migrate b c\n")
	// Adaptive flows and runtime rate retargets: arity and rate-syntax
	// malformations must parse-error, never panic.
	f.Add("topology line a b\nadaptive a b rate 200k\nat 5s rate a b 2M\n")
	f.Add("adaptive a")
	f.Add("adaptive a b rate bogus")
	f.Add("at 1s rate")
	f.Add("at 1s rate a b")
	f.Add("at 1s rate a b 10Q")
	f.Add("at 1s rate a b 1M extra")
	f.Fuzz(func(t *testing.T, text string) {
		sp, err := ParseSpec(text)
		if err != nil {
			return
		}
		if sp.Duration < 0 || sp.Warmup < 0 {
			t.Fatalf("ParseSpec accepted negative times: %+v", sp)
		}
	})
}
