package experiment

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"time"

	"vini/internal/core"
	"vini/internal/netem"
	"vini/internal/sched"
	"vini/internal/topology"
	"vini/internal/traffic"
)

// Spec is a parsed experiment specification — the ns-like description
// language Section 6.2 calls for, covering topology, routing
// configuration, traffic, and scheduled events:
//
//	# Mirror Abilene and fail Denver-Kansas City.
//	topology abilene
//	slice iias reservation 0.25 rt
//	ospf hello 5s dead 10s
//	ping washington seattle interval 200ms
//	iperf-tcp washington seattle window 16384
//	udp-cbr washington seattle rate 10M
//	adaptive washington seattle rate 200k
//	at 12s rate washington seattle 4M
//	at 10s fail-virtual denver kansas-city
//	at 34s restore-virtual denver kansas-city
//	at 20s fail-physical denver kansas-city
//	at 25s reembed
//	at 28s migrate denver sunnyvale
//	at 30s pause
//	at 35s resume
//	at 45s teardown
//	duration 50s
type Spec struct {
	Topology string // "abilene" or "line <n1> <n2> ..."
	LineVia  []string
	// Spares are topology nodes left out of the slice embedding — free
	// substrate capacity available as live-migration targets.
	Spares []string
	Slice  core.SliceConfig
	// Protocol is "ospf" or "rip".
	Protocol    string
	Hello, Dead time.Duration
	RIPUpdate   time.Duration
	Events      []Event
	Traffic     []TrafficSpec
	Duration    time.Duration
	Warmup      time.Duration
	Seed        int64
}

// Event is one scheduled action.
type Event struct {
	At time.Duration
	// Action is a link action (fail-virtual, restore-virtual,
	// fail-physical, restore-physical) with A and B set, a live
	// migration (migrate, A = vnode, B = target physical node), a
	// slice lifecycle action (pause, resume, teardown, reembed)
	// without endpoints, or a traffic retarget (rate, A/B name a
	// udp-cbr flow's endpoints and Rate is the new bits/s).
	Action string
	A, B   string
	// Rate is the new target for a rate action, bits/s.
	Rate float64
}

// TrafficSpec is one measurement flow.
type TrafficSpec struct {
	Kind     string // ping, iperf-tcp, udp-cbr, adaptive
	Src, Dst string
	Interval time.Duration
	Window   int
	RateBps  float64
	Streams  int
}

// ParseSpec reads a specification.
func ParseSpec(text string) (*Spec, error) {
	sp := &Spec{
		Protocol: "ospf",
		Hello:    5 * time.Second, Dead: 10 * time.Second,
		RIPUpdate: 30 * time.Second,
		Duration:  50 * time.Second,
		Warmup:    60 * time.Second,
		Seed:      1,
		Slice:     core.SliceConfig{Name: "experiment", CPUShare: 0.25, RT: true},
	}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("spec: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "topology":
			if len(f) < 2 {
				return nil, fail("topology needs a name")
			}
			sp.Topology = f[1]
			switch f[1] {
			case "line", "ring":
				if len(f) < 4 {
					return nil, fail("%s topology needs at least two nodes", f[1])
				}
				sp.LineVia = f[2:]
			case "star":
				if len(f) < 4 {
					return nil, fail("star topology needs a hub and at least one leaf")
				}
				sp.LineVia = f[2:] // hub first
			case "abilene":
			default:
				return nil, fail("unknown topology %q", f[1])
			}
		case "slice":
			if len(f) < 2 {
				return nil, fail("slice needs a name")
			}
			sp.Slice.Name = f[1]
			for i := 2; i < len(f); i++ {
				switch f[i] {
				case "rt":
					sp.Slice.RT = true
				case "share", "reservation":
					if i+1 >= len(f) {
						return nil, fail("%s needs a value", f[i])
					}
					v, err := strconv.ParseFloat(f[i+1], 64)
					if err != nil || v <= 0 || v > 1 {
						return nil, fail("bad CPU share %q", f[i+1])
					}
					sp.Slice.CPUShare = v
					i++
				case "expose-failures":
					sp.Slice.ExposePhysicalFailures = true
				default:
					return nil, fail("unknown slice option %q", f[i])
				}
			}
		case "ospf":
			sp.Protocol = "ospf"
			if err := parseKVDurations(f[1:], map[string]*time.Duration{
				"hello": &sp.Hello, "dead": &sp.Dead}); err != nil {
				return nil, fail("%v", err)
			}
		case "rip":
			sp.Protocol = "rip"
			if err := parseKVDurations(f[1:], map[string]*time.Duration{
				"update": &sp.RIPUpdate}); err != nil {
				return nil, fail("%v", err)
			}
		case "ping", "iperf-tcp", "udp-cbr", "adaptive":
			if len(f) < 3 {
				return nil, fail("%s needs src and dst", f[0])
			}
			ts := TrafficSpec{Kind: f[0], Src: f[1], Dst: f[2],
				Interval: 200 * time.Millisecond, Window: 16 << 10,
				RateBps: 1e6, Streams: 1}
			for i := 3; i+1 < len(f); i += 2 {
				switch f[i] {
				case "interval":
					d, err := time.ParseDuration(f[i+1])
					if err != nil {
						return nil, fail("bad interval %q", f[i+1])
					}
					ts.Interval = d
				case "window":
					n, err := strconv.Atoi(f[i+1])
					if err != nil || n <= 0 {
						return nil, fail("bad window %q", f[i+1])
					}
					ts.Window = n
				case "streams":
					n, err := strconv.Atoi(f[i+1])
					if err != nil || n <= 0 {
						return nil, fail("bad streams %q", f[i+1])
					}
					ts.Streams = n
				case "rate":
					r, err := parseRate(f[i+1])
					if err != nil {
						return nil, fail("bad rate %q", f[i+1])
					}
					ts.RateBps = r
				default:
					return nil, fail("unknown traffic option %q", f[i])
				}
			}
			sp.Traffic = append(sp.Traffic, ts)
		case "at":
			if len(f) < 3 || len(f) > 6 {
				return nil, fail("at <time> <action> [<a> <b> [<rate>]]")
			}
			d, err := time.ParseDuration(f[1])
			if err != nil {
				return nil, fail("bad time %q", f[1])
			}
			ev := Event{At: d, Action: f[2]}
			switch f[2] {
			case "rate":
				if len(f) != 6 {
					return nil, fail("rate needs <src> <dst> <rate>")
				}
				ev.A, ev.B = f[3], f[4]
				r, err := parseRate(f[5])
				if err != nil {
					return nil, fail("bad rate %q", f[5])
				}
				ev.Rate = r
			case "fail-virtual", "restore-virtual", "fail-physical", "restore-physical":
				if len(f) != 5 {
					return nil, fail("%s needs <a> <b>", f[2])
				}
				ev.A, ev.B = f[3], f[4]
			case "migrate":
				if len(f) != 5 {
					return nil, fail("migrate needs <vnode> <target>")
				}
				ev.A, ev.B = f[3], f[4]
			case "pause", "resume", "teardown", "reembed":
				// Slice lifecycle actions take no endpoints.
				if len(f) != 3 {
					return nil, fail("%s takes no arguments", f[2])
				}
			default:
				return nil, fail("unknown action %q", f[2])
			}
			sp.Events = append(sp.Events, ev)
		case "spare":
			if len(f) < 2 {
				return nil, fail("spare needs at least one node")
			}
			sp.Spares = append(sp.Spares, f[1:]...)
		case "duration":
			if len(f) < 2 {
				return nil, fail("duration needs a value")
			}
			d, err := time.ParseDuration(f[1])
			if err != nil || d <= 0 {
				return nil, fail("bad duration %q", f[1])
			}
			sp.Duration = d
		case "warmup":
			if len(f) < 2 {
				return nil, fail("warmup needs a value")
			}
			d, err := time.ParseDuration(f[1])
			if err != nil || d <= 0 {
				return nil, fail("bad warmup %q", f[1])
			}
			sp.Warmup = d
		case "seed":
			if len(f) < 2 {
				return nil, fail("seed needs a value")
			}
			n, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				return nil, fail("bad seed %q", f[1])
			}
			sp.Seed = n
		default:
			return nil, fail("unknown directive %q", f[0])
		}
	}
	if sp.Topology == "" {
		return nil, fmt.Errorf("spec: no topology directive")
	}
	return sp, nil
}

func parseKVDurations(fields []string, keys map[string]*time.Duration) error {
	for i := 0; i+1 < len(fields); i += 2 {
		dst, ok := keys[fields[i]]
		if !ok {
			return fmt.Errorf("unknown option %q", fields[i])
		}
		d, err := time.ParseDuration(fields[i+1])
		if err != nil || d <= 0 {
			return fmt.Errorf("bad duration %q", fields[i+1])
		}
		*dst = d
	}
	return nil
}

// parseRate accepts "10M", "500k", "1G", or plain bits/s.
func parseRate(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1e9, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult, s = 1e6, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1e3, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad rate")
	}
	return v * mult, nil
}

// Result collects a run's measurements.
type Result struct {
	Pings     []PingRun
	TCPs      []TCPRun
	CBRs      []CBRRun
	Adaptives []AdaptiveRun
	// Log records event applications.
	Log []string
}

// PingRun is the outcome of one ping flow.
type PingRun struct {
	Src, Dst                     string
	Timeline                     []RTTPoint
	Min, Avg, Max, Mdev, LossPct float64
}

// TCPRun is the outcome of one TCP flow.
type TCPRun struct {
	Src, Dst string
	Mbps     float64
	Arrivals []ArrivalPoint
}

// CBRRun is the outcome of one CBR flow.
type CBRRun struct {
	Src, Dst string
	LossPct  float64
	JitterMs float64
	Sent     uint32
	Received uint32
}

// AdaptiveRun is the outcome of one adaptive flow: the final bandwidth
// estimate and the estimate-vs-actual controller trace.
type AdaptiveRun struct {
	Src, Dst    string
	EstimateBps float64
	Sent        uint32
	Received    uint64
	Trace       []RateTracePoint
}

// RateTracePoint is one controller update, relative to traffic start.
type RateTracePoint struct {
	T           float64 // seconds since traffic start
	EstimateBps float64
	ActualBps   float64
}

// Run executes the specification and returns its measurements.
func (sp *Spec) Run() (*Result, error) {
	v := core.New(sp.Seed)
	var g *topology.Graph
	switch sp.Topology {
	case "abilene":
		g = topology.Abilene()
	case "line", "ring":
		g = topology.New()
		for i := 0; i+1 < len(sp.LineVia); i++ {
			g.AddLink(topology.Link{A: sp.LineVia[i], B: sp.LineVia[i+1],
				CostAB: 1, Delay: 5 * time.Millisecond, Bandwidth: 1e9})
		}
		if sp.Topology == "ring" && len(sp.LineVia) > 2 {
			g.AddLink(topology.Link{A: sp.LineVia[len(sp.LineVia)-1], B: sp.LineVia[0],
				CostAB: 1, Delay: 5 * time.Millisecond, Bandwidth: 1e9})
		}
	case "star":
		g = topology.New()
		hub := sp.LineVia[0]
		for _, leaf := range sp.LineVia[1:] {
			g.AddLink(topology.Link{A: hub, B: leaf,
				CostAB: 1, Delay: 5 * time.Millisecond, Bandwidth: 1e9})
		}
	default:
		return nil, fmt.Errorf("spec: unknown topology %q", sp.Topology)
	}
	nodes := g.Nodes()
	sort.Strings(nodes)
	for i, n := range nodes {
		addr, ok := topology.AbilenePublicAddr(n)
		if !ok {
			addr = fmt.Sprintf("198.51.100.%d", i+1)
		}
		if _, err := v.AddNode(n, mustAddr(addr), netem.PlanetLabProfile(), sched.Options{}); err != nil {
			return nil, err
		}
	}
	for _, l := range g.Links() {
		bw := l.Bandwidth
		if bw == 0 {
			bw = 1e9
		}
		if _, err := v.AddLink(netem.LinkConfig{A: l.A, B: l.B, Bandwidth: bw, Delay: l.Delay}); err != nil {
			return nil, err
		}
	}
	v.ComputeRoutes()
	s, err := v.CreateSlice(sp.Slice)
	if err != nil {
		return nil, err
	}
	// Spare nodes stay out of the embedding: free substrate capacity
	// that scheduled migrate actions can move vnodes onto.
	spare := map[string]bool{}
	for _, n := range sp.Spares {
		spare[n] = true
	}
	for _, n := range nodes {
		if spare[n] {
			continue
		}
		if _, err := s.AddVirtualNode(n); err != nil {
			return nil, err
		}
	}
	for _, l := range g.Links() {
		if spare[l.A] || spare[l.B] {
			continue
		}
		if _, err := s.ConnectVirtual(l.A, l.B, l.CostAB); err != nil {
			return nil, err
		}
	}
	switch sp.Protocol {
	case "ospf":
		s.StartOSPF(sp.Hello, sp.Dead)
	case "rip":
		s.StartRIP(sp.RIPUpdate)
	}
	v.Run(sp.Warmup)
	t0 := v.Loop().Now()
	res := &Result{}
	// rateTargets lets scheduled rate actions retune a udp-cbr flow's
	// RateController at runtime; populated when traffic starts (before
	// any event can fire).
	rateTargets := map[string]*traffic.UDPCBR{}
	// Schedule events.
	for _, ev := range sp.Events {
		ev := ev
		v.Loop().Schedule(ev.At, func() {
			res.Log = append(res.Log, strings.TrimSpace(fmt.Sprintf("t=%s %s %s %s",
				ev.At, ev.Action, ev.A, ev.B)))
			switch ev.Action {
			case "fail-virtual", "restore-virtual":
				if vl, ok := s.FindVirtualLink(ev.A, ev.B); ok {
					vl.SetFailed(ev.Action == "fail-virtual")
				}
			case "fail-physical":
				v.FailLink(ev.A, ev.B, 100*time.Millisecond)
			case "restore-physical":
				v.RestoreLink(ev.A, ev.B, 100*time.Millisecond)
			case "pause":
				if err := s.Pause(); err != nil {
					res.Log = append(res.Log, "pause: "+err.Error())
				}
			case "resume":
				if err := s.Resume(); err != nil {
					res.Log = append(res.Log, "resume: "+err.Error())
				}
			case "teardown":
				if err := s.Destroy(); err != nil {
					res.Log = append(res.Log, "teardown: "+err.Error())
				}
			case "reembed":
				if n, err := s.ReEmbed(); err != nil {
					res.Log = append(res.Log, "reembed: "+err.Error())
				} else {
					res.Log = append(res.Log, fmt.Sprintf("reembed moved %d links", n))
				}
			case "migrate":
				if m, err := s.Migrate(ev.A, ev.B, core.MigrateOptions{}); err != nil {
					res.Log = append(res.Log, "migrate: "+err.Error())
				} else {
					res.Log = append(res.Log, fmt.Sprintf("migrate %s -> %s window opened", m.From(), m.To()))
				}
			case "rate":
				if c, ok := rateTargets[ev.A+" "+ev.B]; ok {
					if fr, ok := c.Controller().(*traffic.FixedRate); ok {
						fr.Set(ev.Rate)
					}
				} else {
					res.Log = append(res.Log, fmt.Sprintf("rate: no udp-cbr flow %s -> %s", ev.A, ev.B))
				}
			}
		})
	}
	// Start traffic.
	type pingHandle struct {
		ts TrafficSpec
		p  *traffic.Ping
	}
	type tcpHandle struct {
		ts TrafficSpec
		t  *traffic.IperfTCP
	}
	type cbrHandle struct {
		ts TrafficSpec
		c  *traffic.UDPCBR
	}
	type adaptiveHandle struct {
		ts TrafficSpec
		a  *traffic.Adaptive
	}
	var pings []pingHandle
	var tcps []tcpHandle
	var cbrs []cbrHandle
	var adaptives []adaptiveHandle
	hosts := map[string]*traffic.ICMPHost{}
	hostFor := func(n *netem.Node) *traffic.ICMPHost {
		if h, ok := hosts[n.Name()]; ok {
			return h
		}
		h := traffic.NewICMPHost(n)
		hosts[n.Name()] = h
		return h
	}
	for _, ts := range sp.Traffic {
		src, ok := s.VirtualNode(ts.Src)
		if !ok {
			return nil, fmt.Errorf("spec: traffic source %q not in topology", ts.Src)
		}
		dst, ok := s.VirtualNode(ts.Dst)
		if !ok {
			return nil, fmt.Errorf("spec: traffic destination %q not in topology", ts.Dst)
		}
		switch ts.Kind {
		case "ping":
			hostFor(dst.Phys())
			h := hostFor(src.Phys())
			p := h.StartPing(v.Loop(), traffic.PingConfig{
				Src: src.TapAddr, Dst: dst.TapAddr, Interval: ts.Interval,
				Count: int(sp.Duration/ts.Interval) + 1})
			pings = append(pings, pingHandle{ts, p})
		case "iperf-tcp":
			t, err := traffic.StartIperfTCP(v.Net, src.Phys(), dst.Phys(), traffic.IperfTCPConfig{
				Streams: ts.Streams, Window: ts.Window,
				SrcAddr: src.TapAddr, DstAddr: dst.TapAddr,
				BasePort: uint16(5001 + 100*len(tcps))})
			if err != nil {
				return nil, err
			}
			tcps = append(tcps, tcpHandle{ts, t})
		case "udp-cbr":
			c, err := traffic.StartUDPCBR(v.Net, src.Phys(), dst.Phys(), traffic.UDPCBRConfig{
				RateBps: ts.RateBps, SrcAddr: src.TapAddr, DstAddr: dst.TapAddr,
				Port: uint16(6001 + 100*len(cbrs))})
			if err != nil {
				return nil, err
			}
			rateTargets[ts.Src+" "+ts.Dst] = c
			cbrs = append(cbrs, cbrHandle{ts, c})
		case "adaptive":
			a, err := traffic.StartAdaptive(v.Net, src.Phys(), dst.Phys(), traffic.AdaptiveConfig{
				InitBps: ts.RateBps, SrcAddr: src.TapAddr, DstAddr: dst.TapAddr,
				Port:      uint16(7001 + 100*len(adaptives)),
				Telemetry: v.Telemetry()})
			if err != nil {
				return nil, err
			}
			adaptives = append(adaptives, adaptiveHandle{ts, a})
		}
	}
	v.Run(t0 + sp.Duration)
	for _, h := range tcps {
		h.t.Stop()
	}
	for _, h := range cbrs {
		h.c.Stop()
	}
	for _, h := range adaptives {
		h.a.Stop()
	}
	v.Run(t0 + sp.Duration + 3*time.Second)
	// Collect.
	for _, h := range pings {
		pr := PingRun{Src: h.ts.Src, Dst: h.ts.Dst,
			Min: h.p.RTTs.Min(), Avg: h.p.RTTs.Mean(), Max: h.p.RTTs.Max(),
			Mdev: h.p.RTTs.Mdev(), LossPct: 100 * h.p.LossRate()}
		for _, smp := range h.p.Timeline {
			pr.Timeline = append(pr.Timeline, RTTPoint{
				T:     (smp.At - t0).Seconds(),
				RTTms: float64(smp.RTT) / float64(time.Millisecond),
				Lost:  smp.Lost})
		}
		sort.Slice(pr.Timeline, func(i, j int) bool { return pr.Timeline[i].T < pr.Timeline[j].T })
		res.Pings = append(res.Pings, pr)
	}
	for _, h := range tcps {
		tr := TCPRun{Src: h.ts.Src, Dst: h.ts.Dst, Mbps: h.t.Mbps()}
		var cum float64
		for _, a := range h.t.Receivers()[0].Arrivals {
			cum += float64(a.Len)
			tr.Arrivals = append(tr.Arrivals, ArrivalPoint{T: (a.At - t0).Seconds(), MB: cum / 1e6})
		}
		res.TCPs = append(res.TCPs, tr)
	}
	for _, h := range cbrs {
		res.CBRs = append(res.CBRs, CBRRun{Src: h.ts.Src, Dst: h.ts.Dst,
			LossPct: 100 * h.c.LossRate(), JitterMs: h.c.Jitter(),
			Sent: h.c.Sent(), Received: h.c.Received()})
	}
	for _, h := range adaptives {
		ar := AdaptiveRun{Src: h.ts.Src, Dst: h.ts.Dst,
			EstimateBps: h.a.EstimateBps(), Sent: h.a.Sent(), Received: h.a.Received()}
		for _, pt := range h.a.Trace {
			ar.Trace = append(ar.Trace, RateTracePoint{
				T: (pt.At - t0).Seconds(), EstimateBps: pt.EstimateBps, ActualBps: pt.ActualBps})
		}
		res.Adaptives = append(res.Adaptives, ar)
	}
	return res, nil
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }
