package experiment

import (
	"os"
	"strings"
	"testing"
	"time"
)

// The experiment tests verify the paper's qualitative results — who
// wins, by roughly what factor, where crossovers fall — with shortened
// measurement windows to keep the suite fast. The full-length paper
// parameters live in cmd/vinibench and bench_test.go.

func TestTable2Shape(t *testing.T) {
	native, err := Table2(1, false, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	iias, err := Table2(1, true, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: native 940 Mb/s at 48% CPU; IIAS ~195 Mb/s at 99% CPU —
	// user-space forwarding reaches ~10-25% of kernel rate, CPU-bound.
	if native.Mbps < 850 || native.Mbps > 1000 {
		t.Fatalf("native = %.0f Mb/s, want ~940", native.Mbps)
	}
	if native.CPU > 0.8 {
		t.Fatalf("native fwdr CPU = %.2f, want well under 1", native.CPU)
	}
	if iias.Mbps < 120 || iias.Mbps > 260 {
		t.Fatalf("IIAS = %.0f Mb/s, want ~195", iias.Mbps)
	}
	if iias.CPU < 0.95 {
		t.Fatalf("IIAS fwdr CPU = %.2f, want ~0.99 (CPU-bound)", iias.CPU)
	}
	if ratio := iias.Mbps / native.Mbps; ratio > 0.3 {
		t.Fatalf("IIAS/native = %.2f, want ~0.2", ratio)
	}
}

func TestTable3Shape(t *testing.T) {
	native, err := Table3(1, false, 1000)
	if err != nil {
		t.Fatal(err)
	}
	iias, err := Table3(1, true, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 0.414 ms vs 0.547 ms — IIAS adds ~130 µs without changing
	// the deviation.
	if native.Avg < 0.3 || native.Avg > 0.55 {
		t.Fatalf("native avg = %.3f ms, want ~0.41", native.Avg)
	}
	added := iias.Avg - native.Avg
	if added < 0.08 || added > 0.30 {
		t.Fatalf("IIAS adds %.3f ms, want ~0.13", added)
	}
	if iias.LossPct != 0 || native.LossPct != 0 {
		t.Fatal("loss on dedicated hardware")
	}
	if iias.Mdev > 0.2 {
		t.Fatalf("IIAS mdev = %.3f, want small (paper: unchanged)", iias.Mdev)
	}
}

func TestTable4Shape(t *testing.T) {
	native, err := Table4(1, ModeNative, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	def, err := Table4(1, ModeDefaultShare, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	plvini, err := Table4(1, ModePLVINI, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 90.8 / 22.5 / 86.2 Mb/s.
	if native.Mbps < 80 || native.Mbps > 100 {
		t.Fatalf("native = %.1f, want ~90", native.Mbps)
	}
	if def.Mbps > native.Mbps/2 {
		t.Fatalf("default share = %.1f, want far below native %.1f", def.Mbps, native.Mbps)
	}
	if plvini.Mbps < 2.5*def.Mbps {
		t.Fatalf("PL-VINI %.1f not ~4x default %.1f", plvini.Mbps, def.Mbps)
	}
	if plvini.Mbps < 0.65*native.Mbps {
		t.Fatalf("PL-VINI %.1f does not approach native %.1f", plvini.Mbps, native.Mbps)
	}
}

func TestTable5Shape(t *testing.T) {
	native, err := Table5(1, ModeNative, 500)
	if err != nil {
		t.Fatal(err)
	}
	def, err := Table5(1, ModeDefaultShare, 500)
	if err != nil {
		t.Fatal(err)
	}
	plvini, err := Table5(1, ModePLVINI, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: avg 24.5 / 27.7 / 25.1; mdev 0.2 / 4.8 / 0.38.
	if native.Avg < 24 || native.Avg > 26 {
		t.Fatalf("native avg = %.2f, want ~24.5", native.Avg)
	}
	if def.Mdev < 5*native.Mdev {
		t.Fatalf("default mdev %.2f not >> native %.2f (paper: 20x)", def.Mdev, native.Mdev)
	}
	if plvini.Mdev > def.Mdev/4 {
		t.Fatalf("PL-VINI mdev %.2f not <= default/4 (%.2f)", plvini.Mdev, def.Mdev)
	}
	if plvini.Avg > native.Avg+2.5 {
		t.Fatalf("PL-VINI avg %.2f too far above native %.2f", plvini.Avg, native.Avg)
	}
	if def.Max < plvini.Max*1.5 {
		t.Fatalf("default max %.1f should dwarf PL-VINI max %.1f", def.Max, plvini.Max)
	}
}

func TestFigure6Shape(t *testing.T) {
	rates := []float64{5, 25, 45}
	def, err := Figure6(2, ModeDefaultShare, rates, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	plv, err := Figure6(2, ModePLVINI, rates, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Paper 6(a): loss grows with rate up to ~14% at 45 Mb/s.
	if def[2].LossPct < 4 {
		t.Fatalf("default-share loss at 45 Mb/s = %.2f%%, want >> 0", def[2].LossPct)
	}
	if def[0].LossPct > def[2].LossPct {
		t.Fatalf("loss not increasing with rate: %+v", def)
	}
	// Paper 6(b): PL-VINI comparable to the network (< ~2%).
	for _, p := range plv {
		if p.LossPct > 2 {
			t.Fatalf("PL-VINI loss at %.0f Mb/s = %.2f%%", p.RateMbps, p.LossPct)
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	e, err := NewAbilene(2)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := e.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	classify := func(lo, hi float64) func(RTTPoint) bool {
		return func(p RTTPoint) bool { return !p.Lost && p.RTTms >= lo && p.RTTms <= hi }
	}
	is76 := classify(75, 78)
	is93 := classify(92, 95)
	var pre76, mid93, post76, lost int
	for _, p := range pts {
		switch {
		case p.T < 10 && is76(p):
			pre76++
		case p.T > 20 && p.T < 33 && is93(p):
			mid93++
		case p.T > 44 && is76(p):
			post76++
		case p.Lost && p.T > 10 && p.T < 20:
			lost++
		}
	}
	// Before the failure every sample sits at the 76 ms default path.
	if pre76 < 40 {
		t.Fatalf("pre-failure 76ms samples = %d", pre76)
	}
	// The outage loses pings until OSPF converges (~dead interval).
	if lost < 10 {
		t.Fatalf("outage losses = %d, want >= 10", lost)
	}
	// The re-route settles on the 93 ms path via Atlanta.
	if mid93 < 50 {
		t.Fatalf("93ms samples after reroute = %d", mid93)
	}
	// After restoration the RTT returns to 76 ms.
	if post76 < 20 {
		t.Fatalf("post-restore 76ms samples = %d", post76)
	}
}

func TestFigure9Shape(t *testing.T) {
	e, err := NewAbilene(2)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := e.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	mbAt := func(tt float64) float64 {
		var mb float64
		for _, a := range arr {
			if a.T <= tt {
				mb = a.MB
			}
		}
		return mb
	}
	at10 := mbAt(10)
	// Window-limited throughput before the failure: 16 KB / 76 ms ≈
	// 1.7 Mb/s ≈ 0.215 MB/s → ~2.1 MB in 10 s (allowing slow start).
	if at10 < 1.2 || at10 > 2.6 {
		t.Fatalf("bytes by t=10 = %.2f MB", at10)
	}
	// The stream stalls during the outage...
	stallEnd := 10.0
	for _, a := range arr {
		if a.T > 10.5 && a.MB > at10+0.1 {
			stallEnd = a.T
			break
		}
	}
	if stallEnd < 14 || stallEnd > 30 {
		t.Fatalf("stream resumed at t=%.1f, want after OSPF convergence", stallEnd)
	}
	// ...and makes clear progress afterwards.
	if mbAt(49) < at10+2 {
		t.Fatalf("no progress after recovery: %.2f -> %.2f MB", at10, mbAt(49))
	}
}

func TestSpecParseAndErrors(t *testing.T) {
	sp, err := ParseSpec(`
# the §5.2 experiment
topology abilene
slice iias reservation 0.25 rt
ospf hello 5s dead 10s
ping washington seattle interval 200ms
iperf-tcp washington seattle window 16384 streams 1
udp-cbr washington seattle rate 10M
at 10s fail-virtual denver kansas-city
at 34s restore-virtual denver kansas-city
duration 50s
warmup 30s
seed 7
`)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Topology != "abilene" || sp.Slice.Name != "iias" || !sp.Slice.RT ||
		sp.Slice.CPUShare != 0.25 || sp.Hello != 5*time.Second ||
		len(sp.Traffic) != 3 || len(sp.Events) != 2 || sp.Seed != 7 {
		t.Fatalf("parsed spec = %+v", sp)
	}
	if sp.Traffic[2].RateBps != 10e6 {
		t.Fatalf("rate = %v", sp.Traffic[2].RateBps)
	}
	bad := []string{
		"topology mars",
		"topology abilene\nslice s share 2.0",
		"topology abilene\nat 10s explode a b",
		"topology abilene\nping onlyone",
		"topology abilene\nfrobnicate",
		"duration 10s", // no topology
		"topology abilene\nudp-cbr a b rate -3",
	}
	for _, b := range bad {
		if _, err := ParseSpec(b); err == nil {
			t.Errorf("spec %q accepted", b)
		}
	}
}

func TestSpecRunLineTopology(t *testing.T) {
	sp, err := ParseSpec(`
topology line alpha beta gamma
slice test reservation 0.3 rt
ospf hello 1s dead 3s
ping alpha gamma interval 100ms
warmup 20s
duration 5s
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pings) != 1 {
		t.Fatalf("pings = %d", len(res.Pings))
	}
	p := res.Pings[0]
	if p.LossPct != 0 {
		t.Fatalf("loss = %.1f%%", p.LossPct)
	}
	// Two 5 ms virtual hops: RTT ~20 ms plus forwarding overheads.
	if p.Avg < 19 || p.Avg > 25 {
		t.Fatalf("avg RTT = %.2f ms", p.Avg)
	}
}

func TestSpecRunFailureEvent(t *testing.T) {
	sp, err := ParseSpec(`
topology line a b c
slice test reservation 0.3 rt
ospf hello 1s dead 3s
ping a c interval 200ms
at 3s fail-virtual a b
warmup 20s
duration 10s
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	p := res.Pings[0]
	// The a-b link is the only path to c: pings are lost after t=3.
	if p.LossPct < 30 {
		t.Fatalf("loss = %.1f%%, want most post-failure pings lost", p.LossPct)
	}
	if len(res.Log) != 1 || !strings.Contains(res.Log[0], "fail-virtual") {
		t.Fatalf("event log = %v", res.Log)
	}
}

// TestSpecRunMigrateAction: the migrate action live-migrates a transit
// vnode onto a spare node mid-experiment, and the make-before-break
// recipe means the ping flow crossing it never loses a packet.
func TestSpecRunMigrateAction(t *testing.T) {
	sp, err := ParseSpec(`
topology line a b c d
spare d
slice test reservation 0.3 rt
ospf hello 1s dead 3s
ping a c interval 100ms
at 3s migrate b d
warmup 20s
duration 8s
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Spares) != 1 || sp.Spares[0] != "d" {
		t.Fatalf("spares = %v", sp.Spares)
	}
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range res.Log {
		if strings.Contains(l, "migrate b -> d window opened") {
			found = true
		}
	}
	if !found {
		t.Fatalf("migration did not run: log = %v", res.Log)
	}
	p := res.Pings[0]
	if p.LossPct != 0 {
		t.Fatalf("loss = %.1f%% across a live migration, want 0 (make-before-break)", p.LossPct)
	}
}

// TestShippedSpecsParseAndStarRing keeps the specs/ directory honest and
// covers the ring and star topologies.
func TestShippedSpecsParseAndRing(t *testing.T) {
	for _, f := range []string{"../../specs/abilene-figure8.spec", "../../specs/ring-failover.spec"} {
		text, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseSpec(string(text)); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
	}
	// The ring reroutes around a failed link (longer path, no loss after
	// convergence).
	sp, err := ParseSpec(`
topology ring n e s w
slice r reservation 0.3 rt
ospf hello 1s dead 3s
ping n e interval 250ms
at 5s fail-virtual n e
warmup 20s
duration 25s
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	p := res.Pings[0]
	// Some pings are lost during reconvergence, then traffic flows the
	// long way around (3 hops instead of the direct 1).
	if p.LossPct == 0 || p.LossPct > 40 {
		t.Fatalf("ring failover loss = %.1f%%", p.LossPct)
	}
	var before, after float64
	for _, smp := range p.Timeline {
		if smp.Lost {
			continue
		}
		if smp.T < 5 {
			before = smp.RTTms
		} else if smp.T > 15 {
			after = smp.RTTms
		}
	}
	if after < before+5 {
		t.Fatalf("RTT did not grow after reroute: %.1f -> %.1f ms", before, after)
	}
	// Star topology runs too.
	sp2, err := ParseSpec("topology star hub a b c\nospf hello 1s dead 3s\nping a c interval 500ms\nwarmup 15s\nduration 4s")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sp2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Pings[0].LossPct != 0 {
		t.Fatalf("star loss = %.1f%%", res2.Pings[0].LossPct)
	}
}

func TestSpecLifecycleDirectives(t *testing.T) {
	sp, err := ParseSpec(`
topology line a b c
slice test reservation 0.3 rt
ospf hello 1s dead 3s
ping a c interval 200ms
at 2s pause
at 6s resume
at 14s reembed
at 16s teardown
warmup 20s
duration 18s
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(sp.Events))
	}
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Paused 2s-6s the slice drops everything and OSPF adjacencies die;
	// resumed, it reconverges; torn down at 16s it goes dark again. So
	// loss is substantial but not total.
	p := res.Pings[0]
	if p.LossPct < 10 || p.LossPct > 95 {
		t.Fatalf("loss = %.1f%%, want a paused+torn-down window", p.LossPct)
	}
	var sawPause, sawTeardown bool
	for _, l := range res.Log {
		sawPause = sawPause || strings.Contains(l, "pause")
		sawTeardown = sawTeardown || strings.Contains(l, "teardown")
	}
	if !sawPause || !sawTeardown {
		t.Fatalf("event log = %v", res.Log)
	}
	// Lifecycle directives reject endpoint arguments and vice versa.
	for _, bad := range []string{
		"topology abilene\nat 1s pause a b",
		"topology abilene\nat 1s fail-virtual",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestSpecRunAdaptiveFlow: the adaptive traffic kind runs the
// delay-gradient controller over the overlay; the estimate must move
// off its initial rate and the trace must record the updates.
func TestSpecRunAdaptiveFlow(t *testing.T) {
	sp, err := ParseSpec(`
topology line a b c
slice test reservation 0.3 rt
ospf hello 1s dead 3s
adaptive a c rate 200k
warmup 20s
duration 15s
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Traffic) != 1 || sp.Traffic[0].Kind != "adaptive" {
		t.Fatalf("traffic = %+v", sp.Traffic)
	}
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Adaptives) != 1 {
		t.Fatalf("adaptives = %d", len(res.Adaptives))
	}
	a := res.Adaptives[0]
	if a.Sent == 0 || a.Received == 0 {
		t.Fatalf("vacuous adaptive run: sent=%d received=%d", a.Sent, a.Received)
	}
	if len(a.Trace) == 0 {
		t.Fatal("controller produced no trace")
	}
	// On an uncongested gigabit path the estimate must have climbed well
	// above the 200 kb/s starting rate within 15 s of additive increase.
	if a.EstimateBps <= 400_000 {
		t.Fatalf("estimate never climbed: %.0f", a.EstimateBps)
	}
}

// TestSpecRunRateAction: a scheduled rate action retunes a udp-cbr
// flow's RateController mid-run through the workload runtime's seam.
func TestSpecRunRateAction(t *testing.T) {
	sp, err := ParseSpec(`
topology line a b c
slice test reservation 0.3 rt
ospf hello 1s dead 3s
udp-cbr a c rate 200k
at 3s rate a c 4M
at 5s rate a nobody 1M
warmup 20s
duration 10s
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CBRs) != 1 {
		t.Fatalf("cbrs = %d", len(res.CBRs))
	}
	// 200 kb/s for 3 s then 4 Mb/s for 7 s ≈ 2450 datagrams; the
	// un-retargeted baseline would send ~170. Anything past 1000 proves
	// the retune took effect.
	if res.CBRs[0].Sent < 1000 {
		t.Fatalf("sent = %d, rate action never took effect", res.CBRs[0].Sent)
	}
	var sawMiss bool
	for _, l := range res.Log {
		sawMiss = sawMiss || strings.Contains(l, "no udp-cbr flow")
	}
	if !sawMiss {
		t.Fatalf("missing-flow rate action not logged: %v", res.Log)
	}
}
