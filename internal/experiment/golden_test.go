package experiment

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares rendered output with the checked-in golden file,
// or rewrites it under -update. The simulation is fully deterministic
// under a fixed seed, so any diff is a real behaviour change — either a
// regression or an intentional change that needs a reviewed -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output diverged from %s (re-run with -update if intentional):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestTable2Golden pins the Table 2 throughput measurements for the
// default seed: both rows, bandwidth and CPU, at full precision.
func TestTable2Golden(t *testing.T) {
	var b strings.Builder
	for _, overlay := range []bool{false, true} {
		r, err := Table2(2, overlay, 3*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "%s mbps=%.3f cpu=%.4f\n", r.Name, r.Mbps, r.CPU)
	}
	checkGolden(t, "table2.golden", b.String())
}

// TestFigure8Golden pins the full reconvergence time series: ping RTTs
// through the Abilene overlay across the Denver–Kansas City failure at
// t=10s and restoration at t=34s. Any change to OSPF timing, the
// forwarding path, or the scheduler shows up as a diff in this series.
func TestFigure8Golden(t *testing.T) {
	e, err := NewAbilene(2)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := e.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, p := range pts {
		if p.Lost {
			fmt.Fprintf(&b, "t=%.1f lost\n", p.T)
			continue
		}
		fmt.Fprintf(&b, "t=%.1f rtt=%.3f\n", p.T, p.RTTms)
	}
	checkGolden(t, "figure8.golden", b.String())
}
