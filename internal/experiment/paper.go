// Package experiment implements the paper's Section 5 evaluation as
// reusable, deterministic experiments, plus the ns-like experiment
// specification language of Section 6.2. Each function regenerates one
// table or figure; cmd/vinibench and the repository-level benchmarks are
// thin wrappers around them.
package experiment

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"vini/internal/core"
	"vini/internal/netem"
	"vini/internal/rcc"
	"vini/internal/sched"
	"vini/internal/telemetry"
	"vini/internal/topology"
	"vini/internal/traffic"
)

// Mode selects the environment of the PlanetLab microbenchmarks.
type Mode int

const (
	// ModeNative measures the underlying network (kernel forwarding).
	ModeNative Mode = iota
	// ModeDefaultShare runs IIAS with PlanetLab's default fair share.
	ModeDefaultShare
	// ModePLVINI runs IIAS with a 25% CPU reservation and real-time
	// priority — the PL-VINI configuration.
	ModePLVINI
)

// String names the mode as the paper's tables do.
func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "Network"
	case ModeDefaultShare:
		return "IIAS on PlanetLab"
	case ModePLVINI:
		return "IIAS on PL-VINI"
	default:
		return "unknown"
	}
}

// ThroughputResult is a row of Tables 2 and 4.
type ThroughputResult struct {
	Name   string
	Mbps   float64
	Stddev float64
	// CPU is the forwarder's CPU fraction (Click process or kernel).
	CPU float64
}

// PingResult is a row of Tables 3 and 5 (milliseconds).
type PingResult struct {
	Name                string
	Min, Avg, Max, Mdev float64
	LossPct             float64
}

// JitterResult is a row of Table 6 (milliseconds).
type JitterResult struct {
	Name         string
	Mean, Stddev float64
}

// LossPoint is one point of Figure 6.
type LossPoint struct {
	RateMbps float64
	LossPct  float64
}

// RTTPoint is one ping sample of Figure 8.
type RTTPoint struct {
	T     float64 // seconds since measurement start
	RTTms float64
	Lost  bool
}

// ArrivalPoint is one received-data point of Figure 9.
type ArrivalPoint struct {
	T  float64 // seconds since measurement start
	MB float64 // cumulative megabytes (9a) or stream position (9b)
}

// --- DETER microbenchmarks (§5.1.1, Tables 2 and 3) ---

// deterNet builds the three pc2800 machines of Figure 3 joined by
// Gigabit Ethernet.
func deterNet(seed int64) (*core.VINI, *netem.Node, *netem.Node, *netem.Node) {
	v := core.New(seed)
	v.EnableTelemetry()
	prof := netem.DETERProfile()
	src, _ := v.AddNode("src", netip.MustParseAddr("192.168.1.1"), prof, sched.Options{})
	fwd, _ := v.AddNode("fwdr", netip.MustParseAddr("192.168.1.2"), prof, sched.Options{})
	dst, _ := v.AddNode("sink", netip.MustParseAddr("192.168.1.3"), prof, sched.Options{})
	// ~90µs propagation+NIC latency per link, with the small interrupt-
	// coalescing jitter the paper's mdev column (0.08-0.09 ms) shows.
	v.AddLink(netem.LinkConfig{A: "src", B: "fwdr", Bandwidth: 1e9,
		Delay: 70 * time.Microsecond, Jitter: 45 * time.Microsecond})
	v.AddLink(netem.LinkConfig{A: "fwdr", B: "sink", Bandwidth: 1e9,
		Delay: 70 * time.Microsecond, Jitter: 45 * time.Microsecond})
	v.ComputeRoutes()
	return v, src, fwd, dst
}

// deterIIAS overlays the Figure 4 topology: Click on all three nodes,
// dedicated hardware (full CPU available to the slice).
func deterIIAS(v *core.VINI) (*core.Slice, error) {
	s, err := v.CreateSlice(core.SliceConfig{Name: "iias", CPUShare: 1.0})
	if err != nil {
		return nil, err
	}
	for _, n := range []string{"src", "fwdr", "sink"} {
		if _, err := s.AddVirtualNode(n); err != nil {
			return nil, err
		}
	}
	if _, err := s.ConnectVirtual("src", "fwdr", 1); err != nil {
		return nil, err
	}
	if _, err := s.ConnectVirtual("fwdr", "sink", 1); err != nil {
		return nil, err
	}
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(10 * time.Second)
	return s, nil
}

// Table2 reproduces the DETER TCP throughput test: 20 parallel iperf
// streams through the kernel (overlay=false) or through IIAS's
// user-space Click forwarder (overlay=true). Reported CPU is the Fwdr's
// forwarding-path CPU.
func Table2(seed int64, overlay bool, duration time.Duration) (ThroughputResult, error) {
	v, src, fwd, dst := deterNet(seed)
	cfg := traffic.IperfTCPConfig{Streams: 20, Window: 64 << 10}
	name := "Network"
	var s *core.Slice
	if overlay {
		name = "IIAS"
		var err error
		s, err = deterIIAS(v)
		if err != nil {
			return ThroughputResult{}, err
		}
		a, _ := s.VirtualNode("src")
		b, _ := s.VirtualNode("sink")
		cfg.SrcAddr, cfg.DstAddr = a.TapAddr, b.TapAddr
	}
	// The CPU column reads from the telemetry registry: the counters
	// mirror the scheduler's own accounting increment-for-increment, so
	// a counter delta over the measurement window divided by the same
	// elapsed time is bit-identical to TaskUtilization/KernelUtilization.
	cpuCounter := v.Telemetry().Reg.FindCounter("phys", "fwdr", "kernel/cpu_ns")
	if overlay {
		cpuCounter = v.Telemetry().Reg.FindCounter("iias", "fwdr", "proc/cpu_ns")
	}
	start := v.Loop().Now()
	fwd.ResetAccounting()
	cpu0 := cpuCounter.Value()
	test, err := traffic.StartIperfTCP(v.Net, src, dst, cfg)
	if err != nil {
		return ThroughputResult{}, err
	}
	v.Run(start + duration)
	test.Stop()
	res := ThroughputResult{Name: name, Mbps: test.Mbps()}
	if elapsed := v.Loop().Now() - start; elapsed > 0 {
		res.CPU = float64(cpuCounter.Value()-cpu0) / float64(elapsed)
	}
	return res, nil
}

// Table3 reproduces the DETER latency test: ping -f between Src and Sink
// through the kernel or through IIAS.
func Table3(seed int64, overlay bool, count int) (PingResult, error) {
	v, src, _, dst := deterNet(seed)
	pingSrc, pingDst := src.Addr(), dst.Addr()
	name := "Network"
	if overlay {
		name = "IIAS"
		s, err := deterIIAS(v)
		if err != nil {
			return PingResult{}, err
		}
		a, _ := s.VirtualNode("src")
		b, _ := s.VirtualNode("sink")
		pingSrc, pingDst = a.TapAddr, b.TapAddr
	}
	traffic.NewICMPHost(dst)
	h := traffic.NewICMPHost(src)
	p := h.StartPing(v.Loop(), traffic.PingConfig{Src: pingSrc, Dst: pingDst,
		Interval: time.Millisecond, Count: count})
	v.Run(v.Loop().Now() + time.Duration(count+2000)*time.Millisecond)
	return PingResult{Name: name,
		Min: p.RTTs.Min(), Avg: p.RTTs.Mean(), Max: p.RTTs.Max(),
		Mdev: p.RTTs.Mdev(), LossPct: 100 * p.LossRate()}, nil
}

// --- PlanetLab microbenchmarks (§5.1.2, Tables 4-6, Figure 6) ---

// planetlabNet builds the Figure 5 path: PlanetLab nodes co-located with
// the Abilene Chicago, New York, and Washington D.C. PoPs, 100 Mb/s node
// access, and the measured 20.2 ms and 4.5 ms segment RTTs. Background
// slices contend for each node's CPU.
func planetlabNet(seed int64) (*core.VINI, *netem.Node, *netem.Node) {
	return planetlabNetProf(seed, netem.PlanetLabProfile())
}

// planetlabNetProf is planetlabNet with an explicit host profile (the
// socket-buffer ablation varies it).
func planetlabNetProf(seed int64, prof netem.Profile) (*core.VINI, *netem.Node, *netem.Node) {
	v := core.New(seed)
	chi, _ := v.AddNode(topology.Chicago, netip.MustParseAddr("198.32.154.48"), prof, sched.Options{})
	ny, _ := v.AddNode(topology.NewYork, netip.MustParseAddr("198.32.154.51"), prof, sched.Options{})
	was, _ := v.AddNode(topology.Washington, netip.MustParseAddr("198.32.154.50"), prof, sched.Options{})
	// Abilene's backbone is lightly loaded; the node NIC (100 Mb/s) is
	// the bottleneck, matching the paper's 90.8 Mb/s native result.
	v.AddLink(netem.LinkConfig{A: topology.Chicago, B: topology.NewYork,
		Bandwidth: 100e6, Delay: 10100 * time.Microsecond, Jitter: 600 * time.Microsecond})
	v.AddLink(netem.LinkConfig{A: topology.NewYork, B: topology.Washington,
		Bandwidth: 100e6, Delay: 2250 * time.Microsecond, Jitter: 250 * time.Microsecond})
	v.ComputeRoutes()
	// Contending slices: each PlanetLab node hosts many; a handful are
	// CPU-hungry at any moment (bursty, heavy-tailed).
	rng := v.Loop().RNG()
	for _, n := range []*netem.Node{chi, ny, was} {
		for i := 0; i < 6; i++ {
			sched.StartHog(v.Loop(), n.CPU, sched.HogConfig{
				Name: fmt.Sprintf("slice%d", i), Share: 1.0 / 40,
				MeanBusy: 150 * time.Millisecond, MeanIdle: 350 * time.Millisecond,
				RNG: rng.Fork(),
			})
		}
	}
	return v, chi, was
}

// planetlabSlice embeds the 3-node IIAS overlay with the mode's CPU
// configuration and waits for OSPF to converge.
func planetlabSlice(v *core.VINI, mode Mode) (*core.Slice, error) {
	cfg := core.SliceConfig{Name: "iias"}
	if mode == ModePLVINI {
		cfg.CPUShare = 0.25
		cfg.RT = true
	}
	s, err := v.CreateSlice(cfg)
	if err != nil {
		return nil, err
	}
	for _, n := range []string{topology.Chicago, topology.NewYork, topology.Washington} {
		if _, err := s.AddVirtualNode(n); err != nil {
			return nil, err
		}
	}
	if _, err := s.ConnectVirtual(topology.Chicago, topology.NewYork, 1); err != nil {
		return nil, err
	}
	if _, err := s.ConnectVirtual(topology.NewYork, topology.Washington, 1); err != nil {
		return nil, err
	}
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(v.Loop().Now() + 15*time.Second)
	return s, nil
}

// endpoints returns the traffic source/destination for the mode.
func endpoints(v *core.VINI, s *core.Slice, mode Mode) (src, dst netip.Addr) {
	chi, _ := v.Net.Node(topology.Chicago)
	was, _ := v.Net.Node(topology.Washington)
	if mode == ModeNative {
		return chi.Addr(), was.Addr()
	}
	a, _ := s.VirtualNode(topology.Chicago)
	b, _ := s.VirtualNode(topology.Washington)
	return a.TapAddr, b.TapAddr
}

// Table4 reproduces the PlanetLab TCP throughput rows.
func Table4(seed int64, mode Mode, duration time.Duration) (ThroughputResult, error) {
	v, chi, was := planetlabNet(seed)
	var s *core.Slice
	var err error
	if mode != ModeNative {
		if s, err = planetlabSlice(v, mode); err != nil {
			return ThroughputResult{}, err
		}
	}
	srcA, dstA := endpoints(v, s, mode)
	ny, _ := v.Net.Node(topology.NewYork)
	ny.ResetAccounting()
	start := v.Loop().Now()
	test, err := traffic.StartIperfTCP(v.Net, chi, was, traffic.IperfTCPConfig{
		Streams: 20, Window: 16 << 10, SrcAddr: srcA, DstAddr: dstA})
	if err != nil {
		return ThroughputResult{}, err
	}
	v.Run(start + duration)
	test.Stop()
	res := ThroughputResult{Name: mode.String(), Mbps: test.Mbps()}
	if mode != ModeNative {
		vn, _ := s.VirtualNode(topology.NewYork)
		res.CPU = ny.CPU.TaskUtilization(vn.Proc().Task())
	}
	return res, nil
}

// Table5 reproduces the PlanetLab ping rows.
func Table5(seed int64, mode Mode, count int) (PingResult, error) {
	v, chi, was := planetlabNet(seed)
	var s *core.Slice
	var err error
	if mode != ModeNative {
		if s, err = planetlabSlice(v, mode); err != nil {
			return PingResult{}, err
		}
	}
	srcA, dstA := endpoints(v, s, mode)
	traffic.NewICMPHost(was)
	h := traffic.NewICMPHost(chi)
	p := h.StartPing(v.Loop(), traffic.PingConfig{Src: srcA, Dst: dstA,
		Interval: 20 * time.Millisecond, Count: count})
	v.Run(v.Loop().Now() + time.Duration(count)*20*time.Millisecond + 5*time.Second)
	return PingResult{Name: mode.String(),
		Min: p.RTTs.Min(), Avg: p.RTTs.Mean(), Max: p.RTTs.Max(),
		Mdev: p.RTTs.Mdev(), LossPct: 100 * p.LossRate()}, nil
}

// Table6 reproduces the jitter rows: CBR streams from 1 to 50 Mb/s, the
// jitter pooled across stream rates as the paper reports.
func Table6(seed int64, mode Mode) (JitterResult, error) {
	rates := []float64{1e6, 5e6, 10e6, 20e6, 50e6}
	var pooled []float64
	for i, rate := range rates {
		v, chi, was := planetlabNet(seed + int64(i))
		var s *core.Slice
		var err error
		if mode != ModeNative {
			if s, err = planetlabSlice(v, mode); err != nil {
				return JitterResult{}, err
			}
		}
		srcA, dstA := endpoints(v, s, mode)
		test, err := traffic.StartUDPCBR(v.Net, chi, was, traffic.UDPCBRConfig{
			RateBps: rate, SrcAddr: srcA, DstAddr: dstA})
		if err != nil {
			return JitterResult{}, err
		}
		v.Run(v.Loop().Now() + 10*time.Second)
		test.Stop()
		pooled = append(pooled, test.Jitter())
	}
	var mean, ss float64
	for _, j := range pooled {
		mean += j
	}
	mean /= float64(len(pooled))
	for _, j := range pooled {
		ss += (j - mean) * (j - mean)
	}
	return JitterResult{Name: mode.String(), Mean: mean,
		Stddev: sqrt(ss / float64(len(pooled)))}, nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton's method is plenty here and avoids importing math for one
	// call... but clarity wins: use the obvious loop.
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Figure6 reproduces the packet-loss-versus-rate curves: UDP CBR at each
// rate for duration, reporting loss percentage.
func Figure6(seed int64, mode Mode, ratesMbps []float64, duration time.Duration) ([]LossPoint, error) {
	var out []LossPoint
	for i, r := range ratesMbps {
		v, chi, was := planetlabNet(seed + int64(i)*17)
		var s *core.Slice
		var err error
		if mode != ModeNative {
			if s, err = planetlabSlice(v, mode); err != nil {
				return nil, err
			}
		}
		srcA, dstA := endpoints(v, s, mode)
		test, err := traffic.StartUDPCBR(v.Net, chi, was, traffic.UDPCBRConfig{
			RateBps: r * 1e6, SrcAddr: srcA, DstAddr: dstA})
		if err != nil {
			return nil, err
		}
		v.Run(v.Loop().Now() + duration)
		test.Stop()
		v.Run(v.Loop().Now() + 2*time.Second)
		out = append(out, LossPoint{RateMbps: r, LossPct: 100 * test.LossRate()})
	}
	return out, nil
}

// --- Intra-domain routing experiment (§5.2, Figures 7-9) ---

// AbileneExperiment is the assembled Section 5.2 environment: the
// physical Abilene substrate, an IIAS slice mirroring it (topology and
// OSPF weights extracted from the router configurations by rcc), and the
// Denver–Kansas City virtual link ready to fail.
type AbileneExperiment struct {
	V     *core.VINI
	Slice *core.Slice
	// Hello/Dead are the §5.2 OSPF timers (5 s / 10 s).
	Hello, Dead time.Duration
	denverKC    *core.VirtualLink
}

// NewAbilene builds the experiment from the embedded Abilene router
// configurations and runs until the overlay's OSPF converges.
func NewAbilene(seed int64) (*AbileneExperiment, error) {
	// Parse in sorted key order: BuildTopology numbers nodes (and so the
	// executor numbers domains) in config order, and map iteration order
	// would make same-seed runs diverge.
	files := rcc.AbileneConfigs()
	codes := make([]string, 0, len(files))
	for code := range files {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	var configs []*rcc.RouterConfig
	for _, code := range codes {
		rc, err := rcc.Parse(files[code])
		if err != nil {
			return nil, fmt.Errorf("config %s: %w", code, err)
		}
		configs = append(configs, rc)
	}
	g, err := rcc.BuildTopology(configs)
	if err != nil {
		return nil, err
	}
	hello, dead, err := rcc.Timers(configs)
	if err != nil {
		return nil, err
	}
	v := core.New(seed)
	v.EnableTelemetry()
	for _, code := range g.Nodes() {
		pop, _ := rcc.PopForCode(code)
		addr, _ := topology.AbilenePublicAddr(pop)
		if _, err := v.AddNode(pop, netip.MustParseAddr(addr),
			netem.PlanetLabProfile(), sched.Options{}); err != nil {
			return nil, err
		}
	}
	for _, l := range g.Links() {
		a, _ := rcc.PopForCode(l.A)
		b, _ := rcc.PopForCode(l.B)
		if _, err := v.AddLink(netem.LinkConfig{A: a, B: b,
			Bandwidth: l.Bandwidth, Delay: l.Delay}); err != nil {
			return nil, err
		}
	}
	v.ComputeRoutes()
	// The experiment slice mirrors the physical topology one-to-one,
	// with the real OSPF costs (§5.2: "each virtual link maps directly
	// to a single physical link between two Abilene routers").
	s, err := v.CreateSlice(core.SliceConfig{Name: "abilene-mirror", CPUShare: 0.25, RT: true})
	if err != nil {
		return nil, err
	}
	for _, code := range g.Nodes() {
		pop, _ := rcc.PopForCode(code)
		if _, err := s.AddVirtualNode(pop); err != nil {
			return nil, err
		}
	}
	for _, l := range g.Links() {
		a, _ := rcc.PopForCode(l.A)
		b, _ := rcc.PopForCode(l.B)
		if _, err := s.ConnectVirtual(a, b, l.CostAB); err != nil {
			return nil, err
		}
	}
	// Production-router SPF batching: transient forwarding states last
	// long enough for the paper's one-ping 110ms and 87ms samples.
	s.SPFDelay = time.Second
	s.StartOSPF(hello, dead)
	v.Run(v.Loop().Now() + 60*time.Second)
	dkc, ok := s.FindVirtualLink(topology.Denver, topology.KansasCity)
	if !ok {
		return nil, fmt.Errorf("no Denver-Kansas City virtual link")
	}
	return &AbileneExperiment{V: v, Slice: s, Hello: hello, Dead: dead, denverKC: dkc}, nil
}

// Convergences returns the telemetry-derived convergence windows: for
// every link failure/restore injected so far, the time from the event
// to the last route install it triggered — the quantity Figure 8 makes
// visible indirectly through RTT steps, as a first-class query.
func (e *AbileneExperiment) Convergences() []telemetry.Convergence {
	return telemetry.Convergences(e.V.Telemetry().Rec.Events())
}

// Figure8 runs the §5.2 ping experiment: echoes between Washington D.C.
// and Seattle every 200 ms for 50 seconds, failing Denver–Kansas City
// inside Click at t=10 s and restoring it at t=34 s.
func (e *AbileneExperiment) Figure8() ([]RTTPoint, error) {
	v := e.V
	wash, _ := e.Slice.VirtualNode(topology.Washington)
	sea, _ := e.Slice.VirtualNode(topology.Seattle)
	traffic.NewICMPHost(sea.Phys())
	h := traffic.NewICMPHost(wash.Phys())
	t0 := v.Loop().Now()
	v.Loop().Schedule(10*time.Second, func() { e.denverKC.SetFailed(true) })
	v.Loop().Schedule(34*time.Second, func() { e.denverKC.SetFailed(false) })
	p := h.StartPing(v.Loop(), traffic.PingConfig{
		Src: wash.TapAddr, Dst: sea.TapAddr,
		Interval: 200 * time.Millisecond, Count: 250,
		Timeout: 1500 * time.Millisecond})
	v.Run(t0 + 55*time.Second)
	var out []RTTPoint
	for _, s := range p.Timeline {
		out = append(out, RTTPoint{
			T:     (s.At - t0).Seconds(),
			RTTms: float64(s.RTT) / float64(time.Millisecond),
			Lost:  s.Lost,
		})
	}
	// The timeline appends at reply/timeout time; report in send order.
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out, nil
}

// Figure9 runs the §5.2 TCP experiment: a bulk transfer from Washington
// D.C. to Seattle with iperf's default 16 KB window across the same
// failure/recovery schedule. It returns the receiver's arrival log.
func (e *AbileneExperiment) Figure9() ([]ArrivalPoint, error) {
	v := e.V
	wash, _ := e.Slice.VirtualNode(topology.Washington)
	sea, _ := e.Slice.VirtualNode(topology.Seattle)
	t0 := v.Loop().Now()
	v.Loop().Schedule(10*time.Second, func() { e.denverKC.SetFailed(true) })
	v.Loop().Schedule(34*time.Second, func() { e.denverKC.SetFailed(false) })
	test, err := traffic.StartIperfTCP(v.Net, wash.Phys(), sea.Phys(), traffic.IperfTCPConfig{
		Streams: 1, Window: 16 << 10, SrcAddr: wash.TapAddr, DstAddr: sea.TapAddr})
	if err != nil {
		return nil, err
	}
	v.Run(t0 + 50*time.Second)
	test.Stop()
	var out []ArrivalPoint
	var cum float64
	for _, a := range test.Receivers()[0].Arrivals {
		cum += float64(a.Len)
		out = append(out, ArrivalPoint{
			T:  (a.At - t0).Seconds(),
			MB: cum / 1e6,
		})
	}
	return out, nil
}
