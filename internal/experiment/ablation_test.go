package experiment

import (
	"testing"
	"time"
)

func TestCPUIsolationAblation(t *testing.T) {
	rows, err := CPUIsolationAblation(3, 12*time.Second, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]IsolationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	def := byName["default share"]
	res := byName["reservation only"]
	rt := byName["RT priority only"]
	both := byName["reservation + RT (PL-VINI)"]
	// The reservation buys throughput (the bucket must actually run dry,
	// hence the 12 s window)...
	if res.Mbps < 1.4*def.Mbps {
		t.Fatalf("reservation-only %.1f Mb/s not >> default %.1f", res.Mbps, def.Mbps)
	}
	// ...and real-time priority buys scheduling latency: with both knobs
	// the mdev collapses relative to default share.
	if both.PingMdev > def.PingMdev/4 {
		t.Fatalf("PL-VINI mdev %.2f not << default %.2f", both.PingMdev, def.PingMdev)
	}
	// RT priority alone cannot sustain throughput (tokens run dry).
	if rt.Mbps > both.Mbps {
		t.Fatalf("RT-only %.1f should not beat both knobs %.1f", rt.Mbps, both.Mbps)
	}
	// Combined must be at least as good on both axes as default share.
	if both.Mbps < def.Mbps || both.PingMax > def.PingMax {
		t.Fatalf("both knobs worse than default: %+v vs %+v", both, def)
	}
}

func TestSocketBufferAblation(t *testing.T) {
	rows, err := SocketBufferAblation(4, []int{32, 128, 1024}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Loss must fall (weakly) as the buffer grows, and a tiny buffer
	// must lose substantially at 45 Mb/s.
	if rows[0].LossPct < 3 {
		t.Fatalf("32KB buffer loss = %.2f%%, want substantial", rows[0].LossPct)
	}
	if rows[2].LossPct > rows[0].LossPct/2 {
		t.Fatalf("1MB buffer loss %.2f%% not well below 32KB's %.2f%%",
			rows[2].LossPct, rows[0].LossPct)
	}
}

func TestPacketSizeAblation(t *testing.T) {
	rows, err := PacketSizeAblation(5, []int{64, 512, 1400}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Bits/s capacity grows with packet size (syscall cost amortized)...
	if !(rows[0].Mbps < rows[1].Mbps && rows[1].Mbps < rows[2].Mbps) {
		t.Fatalf("Mb/s not increasing with size: %+v", rows)
	}
	// ...while packets/s shrinks (per-byte copy cost grows).
	if !(rows[0].KppsMeasured > rows[2].KppsMeasured) {
		t.Fatalf("kpps not decreasing with size: %+v", rows)
	}
	// Small packets are syscall-bound: ~1/(6×5µs) ≈ 32 kpps ceiling.
	if rows[0].KppsMeasured < 15 || rows[0].KppsMeasured > 40 {
		t.Fatalf("64B forwarding = %.1f kpps, want near the syscall bound", rows[0].KppsMeasured)
	}
}

func TestBGPMuxAblation(t *testing.T) {
	row, err := BGPMuxAblation(8)
	if err != nil {
		t.Fatal(err)
	}
	if row.SessionsWithMux != 1 || row.SessionsWithout != 8 {
		t.Fatalf("session counts: %+v", row)
	}
	if row.RejectedHijacks == 0 {
		t.Fatal("hijack attempt not rejected")
	}
	if row.RateLimitedFloods < 15 {
		t.Fatalf("flood not rate limited: %+v", row)
	}
}
