package vini_test

import (
	"net/netip"
	"testing"
	"time"

	"vini"
	"vini/internal/topology"
	"vini/internal/traffic"
)

// TestFacadeQuickstart exercises the documented public-API flow end to
// end: build a substrate, embed a slice, converge OSPF, verify routes.
func TestFacadeQuickstart(t *testing.T) {
	v := vini.New(1)
	for i, name := range []string{"a", "b", "c"} {
		addr := netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)})
		if _, err := v.AddNode(name, addr, vini.PlanetLabProfile(), vini.SchedOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]string{{"a", "b"}, {"b", "c"}} {
		if _, err := v.AddLink(vini.LinkConfig{A: l[0], B: l[1], Bandwidth: 1e9, Delay: 2 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	v.ComputeRoutes()
	s, err := v.CreateSlice(vini.SliceConfig{Name: "t", CPUShare: 0.25, RT: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b", "c"} {
		if _, err := s.AddVirtualNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.ConnectVirtual("a", "b", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ConnectVirtual("b", "c", 1); err != nil {
		t.Fatal(err)
	}
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(20 * time.Second)
	a, _ := s.VirtualNode("a")
	c, _ := s.VirtualNode("c")
	r, ok := a.FIB.Lookup(c.TapAddr)
	if !ok || r.Metric != 2 {
		t.Fatalf("a->c route = %+v ok=%v", r, ok)
	}
}

// TestFacadeAbileneHelpers covers BuildAbilene + MirrorAbilene and a
// ping over the mirrored slice.
func TestFacadeAbileneHelpers(t *testing.T) {
	v, err := vini.BuildAbilene(3, vini.PlanetLabProfile())
	if err != nil {
		t.Fatal(err)
	}
	s, err := vini.MirrorAbilene(v, vini.SliceConfig{Name: "mirror", CPUShare: 0.25, RT: true},
		time.Second, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	v.Run(30 * time.Second)
	wash, _ := s.VirtualNode(topology.Washington)
	sea, _ := s.VirtualNode(topology.Seattle)
	traffic.NewICMPHost(sea.Phys())
	h := traffic.NewICMPHost(wash.Phys())
	p := h.StartPing(v.Loop(), traffic.PingConfig{Src: wash.TapAddr, Dst: sea.TapAddr,
		Interval: 500 * time.Millisecond, Count: 10})
	v.Run(v.Loop().Now() + 10*time.Second)
	if p.LossRate() != 0 {
		t.Fatalf("loss %.2f on the mirrored backbone", p.LossRate())
	}
	if avg := p.RTTs.Mean(); avg < 75 || avg > 80 {
		t.Fatalf("avg RTT = %.1f ms, want ~76", avg)
	}
	if _, ok := vini.AbilenePublicAddr(topology.Seattle); !ok {
		t.Fatal("AbilenePublicAddr missing Seattle")
	}
	if g := vini.Abilene(); len(g.Nodes()) != 11 {
		t.Fatal("Abilene graph wrong")
	}
}

// TestFacadeSpec covers ParseSpec through the facade.
func TestFacadeSpec(t *testing.T) {
	sp, err := vini.ParseSpec("topology line x y\nospf hello 1s dead 3s\nwarmup 10s\nduration 2s\nping x y interval 500ms")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pings) != 1 || res.Pings[0].LossPct != 0 {
		t.Fatalf("spec run pings = %+v", res.Pings)
	}
}
